(** A replication follower: rebuilds store state by replaying the primary's
    framed op stream, verifies the epoch-certificate chain at every epoch
    boundary, and (optionally) serves integrity-checked reads through the
    ordinary {!Fastver_net.Server} path — read-only, so clients re-check
    receipt MACs exactly as against the primary.

    Trust model: the follower holds the shared [mac_secret], so its own
    verifier re-derives every receipt and epoch certificate. The stream is
    untrusted transport — ops are buffered per epoch and applied only after
    the boundary record authenticates (stream digest MAC + certificate
    chain), then the follower's local verification scan re-checks the epoch
    balance. A single flipped bit in a streamed op or certificate halts the
    follower with {!Fastver.Integrity_violation} naming the epoch; the
    evidence stays readable via {!failure} and already-verified state keeps
    serving.

    {b Election.} An {!electable} follower binds its advertised replication
    address immediately, as a standby {!Primary} that answers term probes.
    When the primary stays unreachable past [election_timeout], candidates
    run a deterministic round: each probes the others with [Announce_term]
    and the one holding the greatest (verified epoch, priority, run-id)
    tuple promotes in place under a fencing term above every term seen —
    sound because a sealed epoch is chain-authenticated, so the highest
    verified epoch provably contains every certified write. Losers receive
    the winner's [Promote] directive and re-subscribe there. A deposed
    primary that rejoins is refused at subscribe time (its chain term is
    stale) and must demote itself to a follower. *)

type t

type state =
  | Streaming  (** connected, applying verified epochs *)
  | Disconnected  (** between reconnect attempts *)
  | Leading  (** won an election; serving writes and the stream *)
  | Halted
      (** integrity failure — evidence in {!failure}; reads still served *)
  | Stopped

type election = {
  listen : Fastver_net.Addr.t;
      (** this candidate's replication address, bound from the start *)
  peers : Fastver_net.Addr.t list;
      (** the other candidates' replication addresses *)
  priority : int;  (** static tie-break, higher wins (default 0) *)
  election_timeout : float;
      (** seconds of primary unreachability before a candidacy round
          (default 1.0) *)
  probe_timeout : float;
      (** per-peer announce/promote exchange budget (default 1.0) *)
  probe_interval : float;
      (** leader's rival-probe cadence after promotion (default 0.5) *)
  promote_batch : int;
      (** auto-seal batch size re-enabled at promotion (default 256) *)
  checkpoint_dir : string option;
      (** enable auto-checkpointing there once leading *)
}

val electable :
  ?peers:Fastver_net.Addr.t list ->
  ?priority:int ->
  ?election_timeout:float ->
  ?probe_timeout:float ->
  ?probe_interval:float ->
  ?promote_batch:int ->
  ?checkpoint_dir:string ->
  Fastver_net.Addr.t ->
  election
(** [electable listen] with the defaults above. *)

val create :
  ?server_config:Fastver_net.Server.config ->
  ?reconnect_delay:float ->
  ?handshake_timeout:float ->
  ?election:election ->
  ?config:Fastver.Config.t ->
  ?load:(Fastver.t -> unit) ->
  primary:Fastver_net.Addr.t ->
  ?listen:Fastver_net.Addr.t ->
  dir:string ->
  unit ->
  (t, string) result
(** Connect to the primary and bootstrap. A fresh follower subscribes from
    epoch 0 and, when it holds no sealed state, installs the initial
    database via [load] (which must perform the same trusted bulk load the
    primary did — bulk loads are out-of-band, not streamed). If the
    primary's retained stream no longer reaches back to epoch 0 the
    follower fetches the newest committed checkpoint generation into [dir],
    recovers through the manifest-verified recovery path, and tails from the
    recovered epoch. [config.batch_size] is forced to [0]: a follower never
    seals epochs on its own, it advances only at authenticated boundary
    records (until an election promotes it).

    [reconnect_delay] (default 0.2 s) is the {e base} of an exponential
    backoff with full jitter, capped at 5 s and reset by every successful
    subscribe — a fleet of followers losing one primary does not
    reconnect-storm the candidate. [handshake_timeout] (default 5 s) bounds
    every subscribe/fetch conversation; a primary that accepts the
    connection but never answers is treated as down, not waited on forever.

    [election] requires [listen] (the read server) to make promotion
    meaningful, but they are independent: [election.listen] is the
    {e replication} address.

    Follower metrics (on the system's registry):
    [fastver_repl_ops_applied_total], [fastver_repl_certs_verified_total],
    [fastver_repl_certs_rejected_total], [fastver_repl_lag_epochs],
    [fastver_repl_follower_reads_total], [fastver_repl_elections_total],
    [fastver_repl_promotion_seconds]. *)

val run : t -> unit
(** Consume the stream in the calling thread. Returns on {!stop}; raises
    {!Fastver.Integrity_violation} on a halt (state and evidence are
    recorded first, so reads keep serving). Disconnects reconnect
    automatically from the first unverified epoch; a refused re-subscription
    (stream floor passed the follower, or a rolled-back primary) is treated
    as a halt — except "not primary"/"deposed" refusals, which mean the
    cluster is mid-election and are retried. *)

val start : t -> unit
(** {!run} in a background domain; an integrity halt is recorded (see
    {!failure}) rather than propagated. *)

val stop : t -> unit
(** Stop streaming, join the domain, stop the standby listener and the read
    server. *)

val system : t -> Fastver.t
val server : t -> Fastver_net.Server.t option
val state : t -> state

val failure : t -> (int * string) option
(** The halting [(epoch, reason)], if an integrity failure occurred. *)

val verified_epoch : t -> int
(** Highest epoch applied and locally verified ([-1] if none). *)

val applied_ops : t -> int
(** Streamed ops applied to the local store (verified epochs only). *)

val run_id : t -> int64 option
(** The primary incarnation last subscribed to. *)

val term : t -> int
(** The chain term: the fencing term of the newest authenticated boundary
    record (or the term this node promoted under). *)

val standby : t -> Primary.t option
(** The standby/leading replication listener, when electable. *)
