(** A replication follower: rebuilds store state by replaying the primary's
    framed op stream, verifies the epoch-certificate chain at every epoch
    boundary, and (optionally) serves integrity-checked reads through the
    ordinary {!Fastver_net.Server} path — read-only, so clients re-check
    receipt MACs exactly as against the primary.

    Trust model: the follower holds the shared [mac_secret], so its own
    verifier re-derives every receipt and epoch certificate. The stream is
    untrusted transport — ops are buffered per epoch and applied only after
    the boundary record authenticates (stream digest MAC + certificate
    chain), then the follower's local verification scan re-checks the epoch
    balance. A single flipped bit in a streamed op or certificate halts the
    follower with {!Fastver.Integrity_violation} naming the epoch; the
    evidence stays readable via {!failure} and already-verified state keeps
    serving. *)

type t

type state =
  | Streaming  (** connected, applying verified epochs *)
  | Disconnected  (** between reconnect attempts *)
  | Halted
      (** integrity failure — evidence in {!failure}; reads still served *)
  | Stopped

val create :
  ?server_config:Fastver_net.Server.config ->
  ?reconnect_delay:float ->
  ?config:Fastver.Config.t ->
  ?load:(Fastver.t -> unit) ->
  primary:Fastver_net.Addr.t ->
  ?listen:Fastver_net.Addr.t ->
  dir:string ->
  unit ->
  (t, string) result
(** Connect to the primary and bootstrap. A fresh follower subscribes from
    epoch 0 and, when it holds no sealed state, installs the initial
    database via [load] (which must perform the same trusted bulk load the
    primary did — bulk loads are out-of-band, not streamed). If the
    primary's retained stream no longer reaches back to epoch 0 the
    follower fetches the newest committed checkpoint generation into [dir],
    recovers through the manifest-verified recovery path, and tails from the
    recovered epoch. [config.batch_size] is forced to [0]: a follower never
    seals epochs on its own, it advances only at authenticated boundary
    records. With [listen] set, a read-only {!Fastver_net.Server} is started
    on the recovered system.

    Follower metrics (on the system's registry):
    [fastver_repl_ops_applied_total], [fastver_repl_certs_verified_total],
    [fastver_repl_certs_rejected_total], [fastver_repl_lag_epochs],
    [fastver_repl_follower_reads_total]. *)

val run : t -> unit
(** Consume the stream in the calling thread. Returns on {!stop}; raises
    {!Fastver.Integrity_violation} on a halt (state and evidence are
    recorded first, so reads keep serving). Disconnects reconnect
    automatically from the first unverified epoch; a refused re-subscription
    (stream floor passed the follower, or a rolled-back primary) is treated
    as a halt. *)

val start : t -> unit
(** {!run} in a background domain; an integrity halt is recorded (see
    {!failure}) rather than propagated. *)

val stop : t -> unit
(** Stop streaming, join the domain, stop the read server. *)

val system : t -> Fastver.t
val server : t -> Fastver_net.Server.t option
val state : t -> state

val failure : t -> (int * string) option
(** The halting [(epoch, reason)], if an integrity failure occurred. *)

val verified_epoch : t -> int
(** Highest epoch applied and locally verified ([-1] if none). *)

val applied_ops : t -> int
(** Streamed ops applied to the local store (verified epochs only). *)

val run_id : t -> int64 option
(** The primary incarnation last subscribed to. *)
