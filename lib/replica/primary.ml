let src = Logs.Src.create "fastver.replica.primary" ~doc:"Replication primary"

module Log = (val Logs.src_log src : Logs.LOG)
module Wire = Fastver_net.Wire
module Frame = Fastver_net.Frame
module Sockio = Fastver_net.Sockio
module Addr = Fastver_net.Addr
module Client = Fastver_net.Client

type config = {
  retain_epochs : int;
  conn_out_limit : int;
  checkpoint_dir : string option;
  batch_ops : int;
  batch_delay : float;
  term : int;
  priority : int;
}

let default_config =
  {
    retain_epochs = 64;
    conn_out_limit = 64 * 1024 * 1024;
    checkpoint_dir = None;
    batch_ops = 512;
    batch_delay = 0.02;
    term = 0;
    priority = 0;
  }

type role = Leading | Standby

type conn = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  outq : string Queue.t; (* filled under [t.lock] (hooks + loop) *)
  pending : string Queue.t; (* loop-private: frames being written *)
  mutable out_off : int; (* written prefix of the head of [pending] *)
  mutable out_bytes : int; (* total queued bytes, under [t.lock] *)
  mutable subscribed : bool; (* under [t.lock] *)
  mutable closing : bool; (* flush, then close *)
  mutable dead : bool; (* close now, discard output *)
}

type t = {
  sys : Fastver.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  addr : Addr.t;
  run_id : int64;
  lock : Mutex.t;
      (* LEAF lock: the op hook runs under core worker locks and the seal
         hook under the verify mutex, so nothing may be acquired (and no
         blocking call made) while holding it *)
  mutable log : (int * string) list; (* (epoch, frame), newest first *)
  mutable floor : int; (* lowest epoch completely present in [log] *)
  mutable sealed : int; (* highest epoch whose boundary record was emitted *)
  mutable role : role; (* Standby = election candidate: answers term probes,
                          refuses subscribers, tees nothing until promoted *)
  mutable term : int; (* fencing term every boundary record is stamped with *)
  mutable term_start : int;
      (* first epoch sealed under [term]: a subscriber whose verified state
         reaches into [term_start, ..] but carries an older term verified a
         chain this primary re-sealed after winning an election — it must
         discard and re-bootstrap (checkpoint fetch) *)
  mutable deposed_by : (int * string option) option;
      (* evidence this primary lost its mandate: a peer spoke from a higher
         term (optionally naming the new primary's address). The owner polls
         {!deposed} and demotes. *)
  digests : (int, string) Hashtbl.t; (* per-open-epoch running digest *)
  mutable batch : (string * string option) list;
      (* ops buffered toward the next [Repl_batch] frame, newest first;
         all batch fields under [t.lock] *)
  mutable batch_epoch : int; (* epoch every buffered op belongs to *)
  mutable batch_n : int;
  mutable batch_since : float; (* arrival time of the oldest buffered op *)
  mutable frames : int; (* op-carrying stream frames emitted so far *)
  enc : Buffer.t; (* frame encode scratch, under [t.lock] *)
  mutable conns : conn list; (* mutated by the loop; read under [t.lock] *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable stopping : bool;
  mutable loop_domain : unit Domain.t option;
  scratch : Bytes.t;
  m_ops : Fastver_obs.Counter.t;
  m_frames : Fastver_obs.Counter.t;
  m_epochs : Fastver_obs.Counter.t;
  m_followers : Fastver_obs.Gauge.t;
  m_lag_bytes : Fastver_obs.Gauge.t;
  m_term : Fastver_obs.Gauge.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let wake t =
  match Unix.write t.wake_w (Bytes.make 1 '!') 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) ->
      () (* full pipe = wake-up already pending; EPIPE/EBADF = stopping *)

(* Enqueue a frame to one subscribed connection; a follower that cannot
   drain [conn_out_limit] bytes of backlog is cut off rather than allowed
   to pin unbounded memory (it will re-subscribe, or re-bootstrap from a
   checkpoint if it fell past the retained floor). Caller holds [t.lock]. *)
let enqueue t c frame =
  if (not c.dead) && not c.closing then begin
    Queue.push frame c.outq;
    c.out_bytes <- c.out_bytes + String.length frame;
    if c.out_bytes > t.cfg.conn_out_limit then begin
      Log.warn (fun m ->
          m "follower too slow (%d bytes queued): dropping connection"
            c.out_bytes);
      c.dead <- true
    end
  end

let broadcast t frame =
  List.iter (fun c -> if c.subscribed then enqueue t c frame) t.conns

(* Emit the buffered ops as one [Repl_batch] frame. Caller holds [t.lock].
   The per-epoch stream digest was already folded op by op at admission, so
   batching changes only the framing — a follower sees the identical op
   sequence and authenticates the identical boundary MAC. *)
let flush_batch t =
  if t.batch_n > 0 then begin
    let ops = Array.of_list (List.rev t.batch) in
    let frame =
      Wire.encode_response_into t.enc ~id:0L
        (Wire.Repl_batch { epoch = t.batch_epoch; ops })
    in
    t.log <- (t.batch_epoch, frame) :: t.log;
    t.batch <- [];
    t.batch_n <- 0;
    t.frames <- t.frames + 1;
    Fastver_obs.Counter.incr t.m_frames;
    broadcast t frame
  end

(* ---- Tee hooks (see Fastver.set_replication_hooks for the contract) ---- *)

let on_op t ~epoch ~key ~value =
  let key = Key.to_bytes32 key in
  let now = Unix.gettimeofday () in
  let want_wake =
    with_lock t.lock (fun () ->
        let digest =
          match Hashtbl.find_opt t.digests epoch with
          | Some d -> d
          | None -> Stream.empty_digest
        in
        Hashtbl.replace t.digests epoch (Stream.fold digest ~epoch ~key ~value);
        Fastver_obs.Counter.incr t.m_ops;
        if t.cfg.batch_ops <= 1 then begin
          (* Legacy per-op framing (batch_ops <= 1): one frame per op. *)
          let frame =
            Wire.encode_response_into t.enc ~id:0L
              (Wire.Repl_op { epoch; key; value })
          in
          t.log <- (epoch, frame) :: t.log;
          t.frames <- t.frames + 1;
          Fastver_obs.Counter.incr t.m_frames;
          broadcast t frame;
          true
        end
        else begin
          if t.batch_n > 0 && t.batch_epoch <> epoch then flush_batch t;
          if t.batch_n = 0 then begin
            t.batch_epoch <- epoch;
            t.batch_since <- now
          end;
          t.batch <- (key, value) :: t.batch;
          t.batch_n <- t.batch_n + 1;
          if t.batch_n >= t.cfg.batch_ops then begin
            flush_batch t;
            true
          end
          else
            (* Wake only on the first buffered op, so the loop re-arms its
               select timeout to the batch_delay time cap. *)
            t.batch_n = 1
        end)
  in
  if want_wake then wake t

let on_seal t ~epoch ~cert =
  with_lock t.lock (fun () ->
      (* The boundary record commits the epoch's op sequence: everything
         buffered must be framed and in the log ahead of it. *)
      flush_batch t;
      let digest =
        match Hashtbl.find_opt t.digests epoch with
        | Some d ->
            Hashtbl.remove t.digests epoch;
            d
        | None -> Stream.empty_digest (* an epoch with no puts *)
      in
      let stream_mac =
        Stream.boundary_mac
          ~mac_secret:(Fastver.config t.sys).mac_secret
          ~term:t.term ~epoch ~digest ()
      in
      let frame =
        Wire.encode_response_into t.enc ~id:0L
          (Wire.Repl_epoch { epoch; cert; stream_mac; term = t.term })
      in
      t.log <- (epoch, frame) :: t.log;
      t.sealed <- epoch;
      Fastver_obs.Counter.incr t.m_epochs;
      broadcast t frame;
      (* Prune: keep the last [retain_epochs] sealed epochs for tailing
         subscribers; anything older must catch up via checkpoint fetch. *)
      let new_floor = epoch - t.cfg.retain_epochs + 1 in
      if new_floor > t.floor then begin
        t.floor <- new_floor;
        t.log <- List.filter (fun (e, _) -> e >= new_floor) t.log
      end);
  wake t

(* ---- Request handling (loop domain) ---- *)

let reply t c ~id resp =
  with_lock t.lock (fun () ->
      enqueue t c (Wire.encode_response ~id resp))

let handle_subscribe t c ~id ~from_epoch ~term:sub_term =
  with_lock t.lock (fun () ->
      if t.role = Standby then
        enqueue t c
          (Wire.encode_response ~id
             (Wire.Error
                (Printf.sprintf
                   "not primary: standby candidate at term %d" t.term)))
      else if sub_term > t.term then begin
        (* The subscriber verified an epoch sealed under a term this primary
           has never seen: an election happened behind our back, so *we* are
           the deposed one. Record the evidence (the owner demotes) and
           refuse — accepting would fork the chain. *)
        if t.deposed_by = None then t.deposed_by <- Some (sub_term, None);
        enqueue t c
          (Wire.encode_response ~id
             (Wire.Error
                (Printf.sprintf
                   "deposed: subscriber speaks term %d, this primary is at \
                    term %d"
                   sub_term t.term)))
      end
      else if sub_term < t.term && from_epoch - 1 >= t.term_start then
        (* Fencing: the subscriber claims verified epochs that this primary
           (re-)sealed under a newer term, but its own chain for them was
           sealed under an older one — a deposed primary's descendant. Its
           state may diverge from ours at those epochs, so replaying the
           retained tail is unsound: it must discard and re-bootstrap. *)
        enqueue t c
          (Wire.encode_response ~id
             (Wire.Error
                (Printf.sprintf
                   "stale term %d: epochs from %d were re-sealed under term \
                    %d — fetch a checkpoint"
                   sub_term t.term_start t.term)))
      else if from_epoch < t.floor then
        enqueue t c
          (Wire.encode_response ~id
             (Wire.Error
                (Printf.sprintf
                   "subscribe from epoch %d predates the retained stream \
                    (floor %d): fetch a checkpoint"
                   from_epoch t.floor)))
      else if from_epoch > t.sealed + 1 then
        enqueue t c
          (Wire.encode_response ~id
             (Wire.Error
                (Printf.sprintf
                   "subscribe from epoch %d is ahead of this primary (next \
                    boundary is %d): possible primary rollback"
                   from_epoch (t.sealed + 1))))
      else begin
        (* Ack, replay the retained tail, and mark subscribed — atomically
           under the lock, so no hook-teed frame can slip between the replay
           snapshot and the live stream. Flush the open batch first so the
           log is complete up to this instant. *)
        flush_batch t;
        enqueue t c
          (Wire.encode_response ~id
             (Wire.Subscribed { from_epoch; run_id = t.run_id; term = t.term }));
        List.iter
          (fun (e, frame) -> if e >= from_epoch then enqueue t c frame)
          (List.rev t.log);
        c.subscribed <- true
      end);
  wake t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Ship the newest checkpoint generation that has a manifest. The follower
   re-verifies every checksum through the normal recovery path, so nothing
   about this transport is trusted — a torn or tampered shipment is caught
   exactly like a torn or tampered local generation. *)
let checkpoint_reply t =
  match t.cfg.checkpoint_dir with
  | None -> Wire.Error "primary has no checkpoint directory configured"
  | Some dir -> (
      let gens =
        List.filter
          (fun (_, gdir) ->
            Sys.file_exists (Filename.concat gdir Fastver_kvstore.Ckpt_io.Manifest.filename))
          (Fastver_kvstore.Ckpt_io.generations dir)
      in
      match gens with
      | [] -> Wire.Error "primary has no committed checkpoint generation yet"
      | (gen, gdir) :: _ -> (
          match
            let names =
              Array.to_list (Sys.readdir gdir)
              |> List.filter (fun n ->
                     not (Sys.is_directory (Filename.concat gdir n)))
              |> List.sort String.compare
            in
            let files =
              Array.of_list
                (List.map (fun n -> (n, read_file (Filename.concat gdir n))) names)
            in
            let total =
              Array.fold_left (fun a (_, d) -> a + String.length d) 0 files
            in
            if total + 4096 > Wire.max_frame then
              Wire.Error "checkpoint generation too large to stream"
            else
              Wire.Checkpoint_reply
                { generation = gen; files; term = with_lock t.lock (fun () -> t.term) }
          with
          | resp -> resp
          | exception Sys_error e ->
              Wire.Error ("cannot read checkpoint generation: " ^ e)))

(* The responder's election state, under [t.lock]. A standby's newest
   sealed epoch is whatever its follower verified; a leader's is what its
   own boundary records reached. *)
let term_info_locked t =
  Wire.Term_info
    {
      term = t.term;
      sealed =
        (match t.role with
        | Leading -> t.sealed
        | Standby -> Fastver.verified_epoch t.sys);
      priority = t.cfg.priority;
      run_id = t.run_id;
      primary = (t.role = Leading && t.deposed_by = None);
    }

let handle_announce t c ~id ~term ~sealed ~priority ~run_id =
  with_lock t.lock (fun () ->
      Log.debug (fun m ->
          m "announce-term from peer (term %d, sealed %d, prio %d, run %Ld)"
            term sealed priority run_id);
      if term > t.term then begin
        (* Any peer speaking from a higher term proves a newer election
           committed. A leader records the evidence and lets its owner
           demote; a standby just adopts the term so its next candidacy
           starts above it. *)
        match t.role with
        | Leading -> if t.deposed_by = None then t.deposed_by <- Some (term, None)
        | Standby ->
            t.term <- term;
            Fastver_obs.Gauge.set t.m_term (float_of_int term)
      end;
      enqueue t c (Wire.encode_response ~id (term_info_locked t)));
  wake t

let handle_promote t c ~id ~term ~addr =
  with_lock t.lock (fun () ->
      (match t.role with
      | Leading ->
          if term > t.term && t.deposed_by = None then begin
            Log.warn (fun m ->
                m "deposed: peer promoted to term %d (serving at %s)" term addr);
            t.deposed_by <- Some (term, Some addr)
          end
      | Standby ->
          if term >= t.term then begin
            t.term <- max t.term term;
            Fastver_obs.Gauge.set t.m_term (float_of_int t.term);
            if t.deposed_by = None then t.deposed_by <- Some (term, Some addr)
          end);
      enqueue t c (Wire.encode_response ~id (term_info_locked t)));
  wake t

let handle_request t c ~id req =
  match (req : Wire.request) with
  | Wire.Subscribe { from_epoch; term } ->
      handle_subscribe t c ~id ~from_epoch ~term
  | Wire.Fetch_checkpoint ->
      reply t c ~id (checkpoint_reply t);
      wake t
  | Wire.Announce_term { term; sealed; priority; run_id } ->
      handle_announce t c ~id ~term ~sealed ~priority ~run_id
  | Wire.Promote { term; addr } -> handle_promote t c ~id ~term ~addr
  | _ ->
      reply t c ~id (Wire.Error "not a replication opcode");
      wake t

(* ---- The select loop ---- *)

let drain_reader t c =
  let rec frames () =
    match Frame.next c.reader with
    | Error e ->
        Log.info (fun m -> m "malformed replication frame: %s" e);
        reply t c ~id:0L (Wire.Error ("malformed frame: " ^ e));
        c.closing <- true
    | Ok None -> ()
    | Ok (Some payload) ->
        (match Wire.decode_request payload with
        | Error e ->
            reply t c ~id:0L (Wire.Error ("malformed request: " ^ e));
            c.closing <- true
        | Ok (id, req) -> handle_request t c ~id req);
        if not (c.closing || c.dead) then frames ()
  in
  match Sockio.read_chunk c.fd t.scratch with
  | `Eof -> c.dead <- true
  | `Again -> ()
  | `Data n ->
      Frame.feed c.reader t.scratch 0 n;
      frames ()
  | exception Unix.Unix_error _ -> c.dead <- true

let flush_conn t c =
  with_lock t.lock (fun () -> Queue.transfer c.outq c.pending);
  let rec go () =
    match Queue.peek_opt c.pending with
    | None -> if c.closing then c.dead <- true
    | Some head -> (
        match Sockio.write_sub c.fd head c.out_off with
        | `Again -> ()
        | `Wrote n ->
            c.out_off <- c.out_off + n;
            if c.out_off >= String.length head then begin
              ignore (Queue.pop c.pending);
              c.out_off <- 0;
              with_lock t.lock (fun () ->
                  c.out_bytes <- c.out_bytes - String.length head);
              go ()
            end
        | exception Unix.Unix_error _ -> c.dead <- true)
  in
  go ()

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let accept_conns t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (match t.addr with
        | Addr.Tcp _ -> (
            try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ())
        | Addr.Unix_sock _ -> ());
        let c =
          {
            fd;
            reader = Frame.create ();
            outq = Queue.create ();
            pending = Queue.create ();
            out_off = 0;
            out_bytes = 0;
            subscribed = false;
            closing = false;
            dead = false;
          }
        in
        with_lock t.lock (fun () -> t.conns <- c :: t.conns);
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let loop t =
  while not t.stopping do
    let conns = with_lock t.lock (fun () -> t.conns) in
    let rd =
      t.listen_fd :: t.wake_r
      :: List.filter_map (fun c -> if c.dead then None else Some c.fd) conns
    in
    let wr =
      List.filter_map
        (fun c ->
          if (not c.dead) && (c.out_bytes > 0 || not (Queue.is_empty c.pending))
          then Some c.fd
          else None)
        conns
    in
    let timeout =
      (* Shorten the select timeout while a batch is buffered so the
         batch_delay time cap actually fires. *)
      with_lock t.lock (fun () ->
          if t.batch_n > 0 then Float.min t.cfg.batch_delay 1.0 else 1.0)
    in
    (match Unix.select rd wr [] timeout with
    | rd_ready, wr_ready, _ ->
        if List.mem t.wake_r rd_ready then (
          try ignore (Unix.read t.wake_r t.scratch 0 64)
          with Unix.Unix_error _ -> ());
        if List.mem t.listen_fd rd_ready then accept_conns t;
        List.iter
          (fun c ->
            if (not c.dead) && List.mem c.fd wr_ready then flush_conn t c)
          conns;
        List.iter
          (fun c ->
            if (not c.dead) && (not c.closing) && List.mem c.fd rd_ready then
              drain_reader t c)
          conns
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    (* Time cap: a batch older than batch_delay goes out now even if it
       never filled; the broadcast frames get written next iteration. *)
    with_lock t.lock (fun () ->
        if
          t.batch_n > 0
          && Unix.gettimeofday () -. t.batch_since >= t.cfg.batch_delay
        then flush_batch t);
    (* Reap the dead; account follower + lag gauges. *)
    let died, lag =
      with_lock t.lock (fun () ->
          let died = List.filter (fun c -> c.dead) t.conns in
          t.conns <- List.filter (fun c -> not c.dead) t.conns;
          let lag =
            List.fold_left (fun a c -> max a c.out_bytes) 0 t.conns
          in
          Fastver_obs.Gauge.set t.m_followers
            (float_of_int
               (List.length (List.filter (fun c -> c.subscribed) t.conns)));
          (died, lag))
    in
    List.iter close_conn died;
    Fastver_obs.Gauge.set t.m_lag_bytes (float_of_int lag)
  done;
  (* Shutdown: drain queued output first, under a short grace budget, so a
     follower mid-[Fetch_checkpoint] receives its complete reply (or, if it
     cannot drain in time, a frame cut at the transport — which its decoder
     rejects whole; it never sees a torn generation it would try to recover
     from). Then shut the sockets down explicitly: readers get a clean EOF
     rather than a reset, and retry against the elected primary. *)
  let conns = with_lock t.lock (fun () -> t.conns) in
  let deadline = Unix.gettimeofday () +. 1.0 in
  let busy () =
    List.filter
      (fun c ->
        (not c.dead)
        && (not (Queue.is_empty c.pending)
           || with_lock t.lock (fun () -> not (Queue.is_empty c.outq))))
      conns
  in
  let rec drain () =
    match busy () with
    | [] -> ()
    | busy when Unix.gettimeofday () < deadline -> (
        match Unix.select [] (List.map (fun c -> c.fd) busy) [] 0.05 with
        | _, wr, _ ->
            List.iter (fun c -> if List.mem c.fd wr then flush_conn t c) busy;
            drain ()
        | exception Unix.Unix_error (EINTR, _, _) -> drain ())
    | _ ->
        Log.info (fun m ->
            m "shutdown: dropping undrained follower output after grace")
  in
  drain ();
  List.iter
    (fun c ->
      (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      close_conn c)
    conns;
  with_lock t.lock (fun () -> t.conns <- [])

(* ---- Lifecycle ---- *)

let bound_addr t = t.addr

let listen_on addr =
  match Addr.to_sockaddr addr with
  | Error e -> Error e
  | Ok sockaddr -> (
      (match addr with
      | Addr.Unix_sock path when Sys.file_exists path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      let fd = Unix.socket ~cloexec:true (Addr.domain addr) Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd sockaddr;
        Unix.listen fd 64;
        Unix.set_nonblock fd;
        match (addr, Unix.getsockname fd) with
        | Addr.Tcp (host, 0), Unix.ADDR_INET (_, port) -> Addr.Tcp (host, port)
        | _ -> addr
      with
      | bound -> Ok (fd, bound)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string addr)
               (Unix.error_message e)))

let install_hooks t =
  Fastver.set_replication_hooks t.sys
    ~on_op:(fun ~epoch ~key ~value -> on_op t ~epoch ~key ~value)
    ~on_seal:(fun ~epoch ~cert -> on_seal t ~epoch ~cert)

let create ?(config = default_config) ?(role = Leading) sys ~listen =
  match listen_on listen with
  | Error e -> Error e
  | Ok (listen_fd, addr) ->
      let wake_r, wake_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      let module Reg = Fastver_obs.Registry in
      let reg = Fastver.registry sys in
      let run_id =
        (* unique per primary incarnation, so a follower can tell a
           restarted primary from the one it first subscribed to *)
        Int64.logxor
          (Int64.of_float (Unix.gettimeofday () *. 1e6))
          (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40)
      in
      let t =
        {
          sys;
          cfg = config;
          listen_fd;
          addr;
          run_id;
          lock = Mutex.create ();
          log = [];
          floor = Fastver.live_epoch sys;
          sealed = Fastver.verified_epoch sys;
          role;
          term = config.term;
          term_start = Fastver.verified_epoch sys + 1;
          deposed_by = None;
          digests = Hashtbl.create 4;
          batch = [];
          batch_epoch = 0;
          batch_n = 0;
          batch_since = 0.;
          frames = 0;
          enc = Buffer.create 256;
          conns = [];
          wake_r;
          wake_w;
          stopping = false;
          loop_domain = None;
          scratch = Bytes.create 65536;
          m_ops =
            Reg.counter reg ~help:"Ops teed into the replication stream"
              "fastver_repl_ops_streamed_total";
          m_frames =
            Reg.counter reg
              ~help:"Op-carrying frames emitted to the replication stream"
              "fastver_repl_frames_total";
          m_epochs =
            Reg.counter reg
              ~help:"Epoch-boundary records emitted to the replication stream"
              "fastver_repl_epochs_streamed_total";
          m_followers =
            Reg.gauge reg ~help:"Subscribed follower connections"
              "fastver_repl_followers";
          m_lag_bytes =
            Reg.gauge reg
              ~help:"Largest per-follower backlog of unsent stream bytes"
              "fastver_repl_stream_lag_bytes";
          m_term =
            Reg.gauge reg
              ~help:"Replication fencing term this node is operating under"
              "fastver_repl_term";
        }
      in
      Fastver_obs.Gauge.set t.m_term (float_of_int t.term);
      (* A standby is an election candidate: it answers term probes and
         refuses subscribers, but tees nothing until {!promote}. *)
      if role = Leading then install_hooks t;
      Ok t

let run t = loop t
let start t = t.loop_domain <- Some (Domain.spawn (fun () -> loop t))

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    Fastver.clear_replication_hooks t.sys;
    wake t;
    (match t.loop_domain with
    | Some d ->
        t.loop_domain <- None;
        Domain.join d
    | None -> ());
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.wake_r; t.wake_w ];
    match t.addr with
    | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Addr.Tcp _ -> ()
  end

let sealed_epoch t = with_lock t.lock (fun () -> t.sealed)
let frames_emitted t = with_lock t.lock (fun () -> t.frames)
let followers t = with_lock t.lock (fun () -> List.length t.conns)
let run_id t = t.run_id
let role t = with_lock t.lock (fun () -> t.role)
let term t = with_lock t.lock (fun () -> t.term)
let priority t = t.cfg.priority
let deposed t = with_lock t.lock (fun () -> t.deposed_by)

let take_directive t =
  with_lock t.lock (fun () ->
      let d = t.deposed_by in
      if t.role = Standby then t.deposed_by <- None;
      d)

(* ---- Election transitions ---- *)

(* Promotion in place: install the tee hooks on the live store and start
   serving the stream this listener has been refusing. The follower that
   owns this standby flips its net server out of read-only and re-enables
   auto-sealing around this call. The retained log restarts empty — every
   epoch this primary seals is stamped with the new term, so [term_start]
   is exactly the first post-election epoch and the subscribe-time fencing
   check falls out of it. *)
let promote t ~term =
  with_lock t.lock (fun () ->
      if t.role = Leading then invalid_arg "Primary.promote: already leading";
      t.role <- Leading;
      t.term <- term;
      t.deposed_by <- None;
      t.sealed <- Fastver.verified_epoch t.sys;
      t.floor <- Fastver.live_epoch t.sys;
      t.term_start <- t.sealed + 1;
      t.log <- [];
      t.batch <- [];
      t.batch_n <- 0;
      Hashtbl.reset t.digests;
      Fastver_obs.Gauge.set t.m_term (float_of_int term));
  install_hooks t;
  Log.info (fun m ->
      m "promoted: leading term %d from epoch %d at %s" term
        (with_lock t.lock (fun () -> t.term_start))
        (Addr.to_string t.addr));
  wake t

(* Demotion in place: stop teeing, adopt the deposing term, and cut every
   subscriber loose — they must re-subscribe to whoever deposed us. The
   listener stays up as a standby candidate (it keeps answering probes). *)
let demote t ~term =
  Fastver.clear_replication_hooks t.sys;
  with_lock t.lock (fun () ->
      t.role <- Standby;
      t.term <- max t.term term;
      t.deposed_by <- None;
      List.iter (fun c -> c.dead <- true) t.conns;
      Fastver_obs.Gauge.set t.m_term (float_of_int t.term));
  Log.info (fun m ->
      m "demoted to standby at term %d (%s)"
        (with_lock t.lock (fun () -> t.term))
        (Addr.to_string t.addr));
  wake t

(* ---- Peer probing (election rounds, rival detection, rejoin checks) ---- *)

type peer_info = {
  p_term : int;
  p_sealed : int;
  p_priority : int;
  p_run_id : int64;
  p_primary : bool;
}

let rpc ?(timeout = 2.0) peer req ~k =
  match Client.connect peer with
  | Error e -> `Unreachable e
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match
            let id = Client.send conn req in
            Client.expect_id id (Client.recv ~timeout conn)
          with
          | resp -> k resp
          | exception Client.Timeout -> `Unreachable "peer timed out"
          | exception Client.Protocol_error e -> `Unreachable e
          | exception Client.Server_error e -> `Unreachable e
          | exception Unix.Unix_error (e, _, _) ->
              `Unreachable (Unix.error_message e))

(* One [Announce_term] exchange with a peer's replication listener: "here
   is my election state, what is yours?". Total — any failure is just
   [`Unreachable], which election treats as that peer not voting. *)
let announce ?timeout peer ~term ~sealed ~priority ~run_id =
  rpc ?timeout peer (Wire.Announce_term { term; sealed; priority; run_id })
    ~k:(function
    | Wire.Term_info { term; sealed; priority; run_id; primary } ->
        `Info
          {
            p_term = term;
            p_sealed = sealed;
            p_priority = priority;
            p_run_id = run_id;
            p_primary = primary;
          }
    | Wire.Error e -> `Unreachable ("peer refused announce-term: " ^ e)
    | _ -> `Unreachable "unexpected reply to announce-term")

(* Best-effort winner directive: "I am primary for [term] at [self]". *)
let send_promote ?timeout peer ~term ~self =
  rpc ?timeout peer (Wire.Promote { term; addr = Addr.to_string self })
    ~k:(function
    | Wire.Term_info _ -> `Ok
    | Wire.Error e -> `Unreachable ("peer refused promote: " ^ e)
    | _ -> `Unreachable "unexpected reply to promote")
