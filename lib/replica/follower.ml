let src = Logs.Src.create "fastver.replica.follower" ~doc:"Replication follower"

module Log = (val Logs.src_log src : Logs.LOG)
module Wire = Fastver_net.Wire
module Addr = Fastver_net.Addr
module Client = Fastver_net.Client
module Server = Fastver_net.Server
module Verifier = Fastver_verifier.Verifier

type state = Streaming | Disconnected | Halted | Stopped

type t = {
  sys : Fastver.t;
  server : Server.t option;
  primary : Addr.t;
  chain : Verifier.Cert_chain.t;
  lock : Mutex.t;
  mutable conn : Client.t option;
  mutable state : state;
  mutable failure : (int * string) option;
  mutable run_id : int64 option;
  mutable applied : int;
  mutable max_seen : int; (* highest epoch tag seen in the stream *)
  pending : (int, (string * string option) list) Hashtbl.t;
      (* buffered ops per unsealed epoch, newest first: nothing is applied
         to the store until the epoch's boundary record authenticates *)
  digests : (int, string) Hashtbl.t;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  reconnect_delay : float;
  m_applied : Fastver_obs.Counter.t;
  m_certs_ok : Fastver_obs.Counter.t;
  m_certs_bad : Fastver_obs.Counter.t;
  m_lag : Fastver_obs.Gauge.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ---- Bootstrap conversations ---- *)

let subscribe conn ~from_epoch =
  let id = Client.send conn (Wire.Subscribe { from_epoch }) in
  match Client.recv conn with
  | id', Wire.Subscribed { from_epoch = f; run_id } when Int64.equal id id' ->
      Ok (`Subscribed (f, run_id))
  | id', Wire.Error e when Int64.equal id id' -> Ok (`Refused e)
  | _ -> Error "unexpected response to subscribe"

let valid_component name =
  name <> "" && name <> "." && name <> ".."
  && Filename.basename name = name
  && not (String.contains name '/')

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

(* Fetch the primary's newest committed generation into [dir] and recover
   from it. The shipped bytes are untrusted: component names are confined to
   the generation directory and [Fastver.recover] re-verifies the manifest's
   checksums (and the sealed shard layout) before any of it becomes state. *)
let fetch_checkpoint conn ~config ~dir =
  let id = Client.send conn Wire.Fetch_checkpoint in
  match Client.recv conn with
  | id', Wire.Checkpoint_reply { generation; files } when Int64.equal id id' ->
      let gdir =
        Filename.concat dir
          (Fastver_kvstore.Ckpt_io.generation_dir_name generation)
      in
      if
        Array.for_all (fun (name, _) -> valid_component name) files
        && Array.length files > 0
      then begin
        Fastver_kvstore.Ckpt_io.remove_tree gdir;
        mkdir_p gdir;
        Array.iter
          (fun (name, data) -> write_file (Filename.concat gdir name) data)
          files;
        Fastver.recover ~config ~dir ()
      end
      else Error "checkpoint reply contains unsafe file names"
  | id', Wire.Error e when Int64.equal id id' ->
      Error ("checkpoint fetch refused: " ^ e)
  | _ -> Error "unexpected response to checkpoint fetch"

(* ---- Stream handling ---- *)

let gauge_lag t =
  Fastver_obs.Gauge.set t.m_lag
    (float_of_int (max 0 (t.max_seen - Fastver.verified_epoch t.sys)))

let halt t ~epoch reason =
  with_lock t.lock (fun () ->
      if t.failure = None then t.failure <- Some (epoch, reason);
      t.state <- Halted);
  Fastver_obs.Counter.incr t.m_certs_bad;
  (match t.conn with Some c -> Client.close c | None -> ());
  t.conn <- None;
  Log.err (fun m -> m "follower halted at epoch %d: %s" epoch reason);
  raise
    (Fastver.Integrity_violation
       (Printf.sprintf "replication follower halted at epoch %d: %s" epoch
          reason))

let record_op t ~epoch ~key ~value =
  with_lock t.lock (fun () ->
      let digest =
        match Hashtbl.find_opt t.digests epoch with
        | Some d -> d
        | None -> Stream.empty_digest
      in
      Hashtbl.replace t.digests epoch (Stream.fold digest ~epoch ~key ~value);
      Hashtbl.replace t.pending epoch
        ((key, value)
        :: Option.value (Hashtbl.find_opt t.pending epoch) ~default:[]);
      if epoch > t.max_seen then t.max_seen <- epoch);
  gauge_lag t

(* An epoch-boundary record: the commit point for everything streamed under
   this epoch's tag. Nothing was applied yet — a flipped bit in any op (or
   in the certificate itself) halts the follower here, before any client
   could read the altered value. *)
let handle_boundary t ~epoch ~cert ~stream_mac =
  let digest, ops =
    with_lock t.lock (fun () ->
        ( Option.value (Hashtbl.find_opt t.digests epoch)
            ~default:Stream.empty_digest,
          List.rev (Option.value (Hashtbl.find_opt t.pending epoch) ~default:[])
        ))
  in
  let mac_secret = (Fastver.config t.sys).mac_secret in
  if not (Stream.check_boundary_mac ~mac_secret ~epoch ~digest ~tag:stream_mac)
  then
    halt t ~epoch
      (Printf.sprintf
         "stream MAC mismatch for epoch %d: a streamed op or the boundary \
          record was altered"
         epoch);
  (match Verifier.Cert_chain.check t.chain ~epoch ~cert with
  | Error reason -> halt t ~epoch reason
  | Ok () -> ());
  let local_epoch = Fastver.current_epoch t.sys in
  if local_epoch <> epoch then
    halt t ~epoch
      (Printf.sprintf "epoch desync: follower is at epoch %d, stream sealed %d"
         local_epoch epoch);
  List.iter
    (fun (key, value) ->
      let k = Key.of_bytes32 key in
      (match value with
      | Some v -> Fastver.put_key t.sys k v
      | None -> Fastver.delete_key t.sys k);
      Fastver_obs.Counter.incr t.m_applied)
    ops;
  (* Seal locally: the follower's own verifier re-checks the epoch balance
     over the replayed ops, and its live epoch advances in lockstep with
     the primary's — receipts served from here on are stamped [>= epoch]. *)
  (match Fastver.verify t.sys with
  | _cert -> ()
  | exception Fastver.Integrity_violation e ->
      halt t ~epoch ("local verification failed: " ^ e));
  with_lock t.lock (fun () ->
      Hashtbl.remove t.pending epoch;
      Hashtbl.remove t.digests epoch;
      t.applied <- t.applied + List.length ops;
      if epoch > t.max_seen then t.max_seen <- epoch);
  Fastver_obs.Counter.incr t.m_certs_ok;
  gauge_lag t

exception Disconnected_exn

let stream_once t conn =
  match Client.recv conn with
  | _, Wire.Repl_op { epoch; key; value } -> record_op t ~epoch ~key ~value
  | _, Wire.Repl_batch { epoch; ops } ->
      (* Exactly the equivalent Repl_op run: fold and buffer each op in
         order; authentication still happens only at the boundary record. *)
      Array.iter (fun (key, value) -> record_op t ~epoch ~key ~value) ops
  | _, Wire.Repl_epoch { epoch; cert; stream_mac } ->
      handle_boundary t ~epoch ~cert ~stream_mac
  | _, Wire.Error e ->
      Log.warn (fun m -> m "primary sent error mid-stream: %s" e);
      raise Disconnected_exn
  | _, _ -> raise (Client.Protocol_error "unexpected frame on replication stream")

let drop_unsealed t =
  with_lock t.lock (fun () ->
      Hashtbl.reset t.pending;
      Hashtbl.reset t.digests;
      t.max_seen <- Fastver.verified_epoch t.sys)

let rec run t =
  match t.conn with
  | None -> reconnect t
  | Some conn -> (
      match stream_once t conn with
      | () -> run t
      | exception (Client.Protocol_error _ | Unix.Unix_error _ | Disconnected_exn)
        ->
          if Atomic.get t.stop_flag then t.state <- Stopped
          else begin
            Log.info (fun m -> m "replication stream lost; reconnecting");
            Client.close conn;
            t.conn <- None;
            t.state <- Disconnected;
            reconnect t
          end)

(* Reconnect with the follower's existing state: drop buffered unsealed
   epochs (the primary replays them in full) and re-subscribe from the first
   epoch we have not verified. A refusal is terminal: falling below the
   primary's retained floor needs a checkpoint re-bootstrap (restart the
   follower), and a primary behind our verified epoch is a rollback. *)
and reconnect t =
  if Atomic.get t.stop_flag then t.state <- Stopped
  else begin
    drop_unsealed t;
    match Client.connect t.primary with
    | Error _ ->
        Unix.sleepf t.reconnect_delay;
        reconnect t
    | Ok conn -> (
        let from_epoch = Fastver.verified_epoch t.sys + 1 in
        match subscribe conn ~from_epoch with
        | Ok (`Subscribed (_, rid)) ->
            (match t.run_id with
            | Some old when not (Int64.equal old rid) ->
                Log.warn (fun m ->
                    m "primary restarted (run %Ld -> %Ld); resuming from epoch %d"
                      old rid from_epoch)
            | _ -> ());
            t.run_id <- Some rid;
            t.conn <- Some conn;
            t.state <- Streaming;
            run t
        | Ok (`Refused e) ->
            Client.close conn;
            t.state <- Halted;
            halt t ~epoch:(Fastver.verified_epoch t.sys)
              ("primary refused re-subscription: " ^ e)
        | Error e | (exception Client.Protocol_error e) ->
            Client.close conn;
            Unix.sleepf t.reconnect_delay;
            ignore e;
            reconnect t
        | exception Unix.Unix_error _ ->
            Client.close conn;
            Unix.sleepf t.reconnect_delay;
            reconnect t)
  end

(* ---- Lifecycle ---- *)

let mk ?server_config ?(reconnect_delay = 0.2) ~primary ?listen ~conn ~run_id sys
    =
  let module Reg = Fastver_obs.Registry in
  let reg = Fastver.registry sys in
  Reg.counter_fn reg
    ~help:"Validated reads served by this follower"
    "fastver_repl_follower_reads_total"
    (fun () -> (Fastver.stats sys).gets + (Fastver.stats sys).scans);
  let server =
    match listen with
    | None -> Ok None
    | Some addr -> (
        let config =
          match server_config with
          | Some c -> { c with Server.read_only = true }
          | None -> { Server.default_config with read_only = true }
        in
        match Server.create ~config sys ~listen:addr with
        | Ok s ->
            Server.start s;
            Ok (Some s)
        | Error e -> Error e)
  in
  match server with
  | Error e -> Error e
  | Ok server ->
      Ok
        {
          sys;
          server;
          primary;
          chain =
            Verifier.Cert_chain.create
              ~mac_secret:(Fastver.config sys).mac_secret
              ~verified:(Fastver.verified_epoch sys);
          lock = Mutex.create ();
          conn = Some conn;
          state = Streaming;
          failure = None;
          run_id = Some run_id;
          applied = 0;
          max_seen = Fastver.verified_epoch sys;
          pending = Hashtbl.create 4;
          digests = Hashtbl.create 4;
          stop_flag = Atomic.make false;
          domain = None;
          reconnect_delay;
          m_applied =
            Reg.counter reg ~help:"Replicated ops applied after verification"
              "fastver_repl_ops_applied_total";
          m_certs_ok =
            Reg.counter reg ~help:"Epoch boundary records that authenticated"
              "fastver_repl_certs_verified_total";
          m_certs_bad =
            Reg.counter reg ~help:"Epoch boundary records rejected"
              "fastver_repl_certs_rejected_total";
          m_lag =
            Reg.gauge reg
              ~help:"Epochs seen in the stream but not yet verified locally"
              "fastver_repl_lag_epochs";
        }

let create ?server_config ?reconnect_delay ?(config = Fastver.Config.default)
    ?load ~primary ?listen ~dir () =
  (* A follower never seals epochs on its own: batch-triggered auto
     verification is disabled; epochs advance only at authenticated
     boundary records. *)
  let config = { config with Fastver.Config.batch_size = 0 } in
  match Client.connect primary with
  | Error e -> Error e
  | Ok conn -> (
      let fail e =
        Client.close conn;
        Error e
      in
      (* A fresh follower's state reflects no sealed epoch: subscribe from
         0. If the primary's retained stream starts later, bootstrap from
         its newest committed checkpoint generation and tail from the
         sealed epoch — exactly the recovery path a restarted primary
         takes. *)
      match subscribe conn ~from_epoch:0 with
      | Error e -> fail e
      | exception Client.Protocol_error e -> fail e
      | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
      | Ok (`Subscribed (_, run_id)) -> (
          let sys = Fastver.create ~config () in
          (match load with Some f -> f sys | None -> ());
          match mk ?server_config ?reconnect_delay ~primary ?listen ~conn ~run_id sys with
          | Ok t -> Ok t
          | Error e -> fail e)
      | Ok (`Refused reason) -> (
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            nn > 0 && go 0
          in
          if not (contains reason "fetch a checkpoint") then
            fail ("primary refused subscription: " ^ reason)
          else
            match fetch_checkpoint conn ~config ~dir with
            | Error e -> fail e
            | exception Client.Protocol_error e -> fail e
            | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
            | Ok sys -> (
                let from_epoch = Fastver.verified_epoch sys + 1 in
                Log.app (fun m ->
                    m
                      "bootstrapped from primary checkpoint (verified epoch \
                       %d); tailing from %d"
                      (Fastver.verified_epoch sys)
                      from_epoch);
                match subscribe conn ~from_epoch with
                | Ok (`Subscribed (_, run_id)) -> (
                    match
                      mk ?server_config ?reconnect_delay ~primary ?listen ~conn
                        ~run_id sys
                    with
                    | Ok t -> Ok t
                    | Error e -> fail e)
                | Ok (`Refused e) ->
                    fail ("primary refused post-checkpoint subscription: " ^ e)
                | Error e -> fail e
                | exception Client.Protocol_error e -> fail e
                | exception Unix.Unix_error (e, _, _) ->
                    fail (Unix.error_message e))))

let start t =
  t.domain <-
    Some
      (Domain.spawn (fun () ->
           match run t with
           | () -> ()
           | exception Fastver.Integrity_violation _ ->
               () (* evidence preserved in [failure t]; reads keep serving *)
           | exception e ->
               Log.err (fun m ->
                   m "follower stream loop died: %s" (Printexc.to_string e))))

let stop t =
  Atomic.set t.stop_flag true;
  (match t.conn with Some c -> Client.close c | None -> ());
  (match t.domain with
  | Some d ->
      t.domain <- None;
      Domain.join d
  | None -> ());
  (match t.server with Some s -> Server.stop s | None -> ());
  t.state <- Stopped

let system t = t.sys
let server t = t.server
let state t = with_lock t.lock (fun () -> t.state)
let failure t = with_lock t.lock (fun () -> t.failure)
let verified_epoch t = Fastver.verified_epoch t.sys
let applied_ops t = with_lock t.lock (fun () -> t.applied)
let run_id t = t.run_id
