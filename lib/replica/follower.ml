let src = Logs.Src.create "fastver.replica.follower" ~doc:"Replication follower"

module Log = (val Logs.src_log src : Logs.LOG)
module Wire = Fastver_net.Wire
module Addr = Fastver_net.Addr
module Client = Fastver_net.Client
module Server = Fastver_net.Server
module Verifier = Fastver_verifier.Verifier

type state = Streaming | Disconnected | Leading | Halted | Stopped

type election = {
  listen : Addr.t;
      (* bound as a standby listener from the start: answers term probes,
         refuses subscribers; serves the stream once promoted *)
  peers : Addr.t list; (* the other candidates' replication addresses *)
  priority : int;
  election_timeout : float;
      (* primary unreachable this long before a candidacy round *)
  probe_timeout : float; (* per-peer announce/promote exchange budget *)
  probe_interval : float; (* leader's rival-probe cadence *)
  promote_batch : int; (* auto-seal cadence re-enabled at promotion *)
  checkpoint_dir : string option; (* auto-checkpoint once leading *)
}

let electable ?(peers = []) ?(priority = 0) ?(election_timeout = 1.0)
    ?(probe_timeout = 1.0) ?(probe_interval = 0.5) ?(promote_batch = 256)
    ?checkpoint_dir listen =
  {
    listen;
    peers;
    priority;
    election_timeout;
    probe_timeout;
    probe_interval;
    promote_batch;
    checkpoint_dir;
  }

let backoff_cap = 5.0

type t = {
  sys : Fastver.t;
  server : Server.t option;
  mutable primary : Addr.t; (* current subscription target *)
  orig_primary : Addr.t; (* as configured: probed so a rejoining deposed
                            primary learns of the new term *)
  chain : Verifier.Cert_chain.t;
  lock : Mutex.t;
  mutable conn : Client.t option;
  mutable state : state;
  mutable failure : (int * string) option;
  mutable run_id : int64 option;
  mutable applied : int;
  mutable max_seen : int; (* highest epoch tag seen in the stream *)
  pending : (int, (string * string option) list) Hashtbl.t;
      (* buffered ops per unsealed epoch, newest first: nothing is applied
         to the store until the epoch's boundary record authenticates *)
  digests : (int, string) Hashtbl.t;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  reconnect_delay : float; (* backoff base *)
  mutable backoff : float; (* current exponential ceiling, [base, cap] *)
  rng : Random.State.t; (* full jitter: N followers losing one primary
                           must not hammer the candidate in lockstep *)
  handshake_timeout : float;
  mutable term : int;
      (* chain term: the fencing term the newest *authenticated* boundary
         record carried. This — and only this — is what Subscribe claims;
         adopting a term any earlier would let a divergent chain bypass the
         primary's stale-term fence. *)
  mutable seen_term : int;
      (* highest term observed anywhere (acks, probes, boundaries) — a
         candidacy must outbid it *)
  mutable lost_since : float option;
      (* when the primary first became unreachable; election grace timer *)
  election : election option;
  standby : Primary.t option; (* Some iff electable *)
  self_id : int64; (* candidate identity, final election tie-break *)
  m_applied : Fastver_obs.Counter.t;
  m_certs_ok : Fastver_obs.Counter.t;
  m_certs_bad : Fastver_obs.Counter.t;
  m_lag : Fastver_obs.Gauge.t;
  m_elections : Fastver_obs.Counter.t;
  m_promote_s : Fastver_obs.Histogram.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* ---- Bootstrap conversations ---- *)

(* The handshake is deadline-bounded: a half-open primary socket (frozen
   under SIGSTOP, or killed mid-handshake) otherwise parks the follower in
   recv forever. [Client.Timeout] propagates to the caller, which treats it
   like any other connection failure and falls back to reconnect. *)
let subscribe ?(timeout = 5.0) conn ~from_epoch ~term =
  let id = Client.send conn (Wire.Subscribe { from_epoch; term }) in
  match Client.recv ~timeout conn with
  | id', Wire.Subscribed { from_epoch = f; run_id; term } when Int64.equal id id'
    ->
      Ok (`Subscribed (f, run_id, term))
  | id', Wire.Error e when Int64.equal id id' -> Ok (`Refused e)
  | _ -> Error "unexpected response to subscribe"

let valid_component name =
  name <> "" && name <> "." && name <> ".."
  && Filename.basename name = name
  && not (String.contains name '/')

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

(* Fetch the primary's newest committed generation into [dir] and recover
   from it. The shipped bytes are untrusted: component names are confined to
   the generation directory and [Fastver.recover] re-verifies the manifest's
   checksums (and the sealed shard layout) before any of it becomes state.
   Also returns the sender's fencing term: the generation's epochs were
   sealed under it, and terms are not persisted inside checkpoints, so the
   bootstrapping follower must claim it when re-subscribing or the primary's
   own stale-term fence sends it straight back here. The field itself is
   unauthenticated — a lie costs availability at the next subscribe, never
   integrity (divergent state still fails the local re-verification scan
   against the streamed certificates). *)
let fetch_checkpoint ?(timeout = 60.0) conn ~config ~dir =
  let id = Client.send conn Wire.Fetch_checkpoint in
  match Client.recv ~timeout conn with
  | id', Wire.Checkpoint_reply { generation; files; term } when Int64.equal id id' ->
      let gdir =
        Filename.concat dir
          (Fastver_kvstore.Ckpt_io.generation_dir_name generation)
      in
      if
        Array.for_all (fun (name, _) -> valid_component name) files
        && Array.length files > 0
      then begin
        Fastver_kvstore.Ckpt_io.remove_tree gdir;
        mkdir_p gdir;
        Array.iter
          (fun (name, data) -> write_file (Filename.concat gdir name) data)
          files;
        Result.map (fun sys -> (sys, term)) (Fastver.recover ~config ~dir ())
      end
      else Error "checkpoint reply contains unsafe file names"
  | id', Wire.Error e when Int64.equal id id' ->
      Error ("checkpoint fetch refused: " ^ e)
  | _ -> Error "unexpected response to checkpoint fetch"

(* ---- Stream handling ---- *)

let gauge_lag t =
  Fastver_obs.Gauge.set t.m_lag
    (float_of_int (max 0 (t.max_seen - Fastver.verified_epoch t.sys)))

let halt t ~epoch reason =
  with_lock t.lock (fun () ->
      if t.failure = None then t.failure <- Some (epoch, reason);
      t.state <- Halted);
  Fastver_obs.Counter.incr t.m_certs_bad;
  (match t.conn with Some c -> Client.close c | None -> ());
  t.conn <- None;
  Log.err (fun m -> m "follower halted at epoch %d: %s" epoch reason);
  raise
    (Fastver.Integrity_violation
       (Printf.sprintf "replication follower halted at epoch %d: %s" epoch
          reason))

let record_op t ~epoch ~key ~value =
  with_lock t.lock (fun () ->
      let digest =
        match Hashtbl.find_opt t.digests epoch with
        | Some d -> d
        | None -> Stream.empty_digest
      in
      Hashtbl.replace t.digests epoch (Stream.fold digest ~epoch ~key ~value);
      Hashtbl.replace t.pending epoch
        ((key, value)
        :: Option.value (Hashtbl.find_opt t.pending epoch) ~default:[]);
      if epoch > t.max_seen then t.max_seen <- epoch);
  gauge_lag t

(* An epoch-boundary record: the commit point for everything streamed under
   this epoch's tag. Nothing was applied yet — a flipped bit in any op (or
   in the certificate itself) halts the follower here, before any client
   could read the altered value. *)
let handle_boundary t ~epoch ~cert ~stream_mac ~term =
  let digest, ops =
    with_lock t.lock (fun () ->
        ( Option.value (Hashtbl.find_opt t.digests epoch)
            ~default:Stream.empty_digest,
          List.rev (Option.value (Hashtbl.find_opt t.pending epoch) ~default:[])
        ))
  in
  (* Fencing: terms only move forward along an authenticated chain. A
     boundary stamped below the chain term is a deposed primary's record
     (or a replay) — reject before any MAC work. *)
  if term < t.term then
    halt t ~epoch
      (Printf.sprintf
         "fencing violation: boundary record for epoch %d carries term %d \
          but the chain is already at term %d"
         epoch term t.term);
  let mac_secret = (Fastver.config t.sys).mac_secret in
  if
    not
      (Stream.check_boundary_mac ~mac_secret ~term ~epoch ~digest
         ~tag:stream_mac ())
  then
    halt t ~epoch
      (Printf.sprintf
         "stream MAC mismatch for epoch %d: a streamed op or the boundary \
          record was altered"
         epoch);
  (match Verifier.Cert_chain.check t.chain ~epoch ~cert with
  | Error reason -> halt t ~epoch reason
  | Ok () -> ());
  let local_epoch = Fastver.current_epoch t.sys in
  if local_epoch <> epoch then
    halt t ~epoch
      (Printf.sprintf "epoch desync: follower is at epoch %d, stream sealed %d"
         local_epoch epoch);
  List.iter
    (fun (key, value) ->
      let k = Key.of_bytes32 key in
      (match value with
      | Some v -> Fastver.put_key t.sys k v
      | None -> Fastver.delete_key t.sys k);
      Fastver_obs.Counter.incr t.m_applied)
    ops;
  (* Seal locally: the follower's own verifier re-checks the epoch balance
     over the replayed ops, and its live epoch advances in lockstep with
     the primary's — receipts served from here on are stamped [>= epoch]. *)
  (match Fastver.verify t.sys with
  | _cert -> ()
  | exception Fastver.Integrity_violation e ->
      halt t ~epoch ("local verification failed: " ^ e));
  with_lock t.lock (fun () ->
      Hashtbl.remove t.pending epoch;
      Hashtbl.remove t.digests epoch;
      t.applied <- t.applied + List.length ops;
      if epoch > t.max_seen then t.max_seen <- epoch;
      (* The chain term advances only here: the boundary authenticated, so
         our newest verified epoch really was sealed under [term]. *)
      if term > t.term then t.term <- term;
      if term > t.seen_term then t.seen_term <- term);
  Fastver_obs.Counter.incr t.m_certs_ok;
  gauge_lag t

exception Disconnected_exn

let stream_once t conn =
  match Client.recv conn with
  | _, Wire.Repl_op { epoch; key; value } -> record_op t ~epoch ~key ~value
  | _, Wire.Repl_batch { epoch; ops } ->
      (* Exactly the equivalent Repl_op run: fold and buffer each op in
         order; authentication still happens only at the boundary record. *)
      Array.iter (fun (key, value) -> record_op t ~epoch ~key ~value) ops
  | _, Wire.Repl_epoch { epoch; cert; stream_mac; term } ->
      handle_boundary t ~epoch ~cert ~stream_mac ~term
  | _, Wire.Error e ->
      Log.warn (fun m -> m "primary sent error mid-stream: %s" e);
      raise Disconnected_exn
  | _, _ -> raise (Client.Protocol_error "unexpected frame on replication stream")

let drop_unsealed t =
  with_lock t.lock (fun () ->
      Hashtbl.reset t.pending;
      Hashtbl.reset t.digests;
      t.max_seen <- Fastver.verified_epoch t.sys)

(* ---- Reconnect pacing: exponential backoff with full jitter ---- *)

(* Sleep uniform(0, backoff) then double the ceiling toward the cap; a
   successful subscribe resets it to the base. Sliced so [stop] never waits
   out a multi-second delay. *)
let backoff_sleep t =
  let d = Random.State.float t.rng t.backoff in
  t.backoff <- Float.min backoff_cap (t.backoff *. 2.0);
  let until = Unix.gettimeofday () +. d in
  let rec nap () =
    if not (Atomic.get t.stop_flag) then begin
      let left = until -. Unix.gettimeofday () in
      if left > 0.0 then begin
        Unix.sleepf (Float.min 0.05 left);
        nap ()
      end
    end
  in
  nap ()

let reset_backoff t =
  t.backoff <- t.reconnect_delay;
  t.lost_since <- None

let note_seen_term t term =
  if term > t.seen_term then t.seen_term <- term

(* ---- Election ---- *)

(* A candidate outranks another by (sealed, priority, run-id), compared
   lexicographically. Soundness of leading with the *highest verified
   epoch*: every sealed epoch is chain-authenticated back to the shared
   secret, so the candidate holding the largest one provably contains every
   write any client could have had certified — there is nothing newer to
   lose. Priority and run-id only break exact ties deterministically. *)
let rank (sealed, prio, rid) = (sealed, prio, rid)

let my_rank t e = rank (Fastver.verified_epoch t.sys, e.priority, t.self_id)

let retarget t ~addr ~term reason =
  Log.app (fun m ->
      m "re-homing to %s (term %d): %s" (Addr.to_string addr) term reason);
  t.primary <- addr;
  note_seen_term t term;
  reset_backoff t

(* Consume a [Promote] directive the standby listener may have received
   from an election winner. *)
let check_directive t =
  match t.standby with
  | None -> ()
  | Some sb -> (
      match Primary.take_directive sb with
      | Some (term, Some addr_s) -> (
          match Addr.parse addr_s with
          | Ok addr -> retarget t ~addr ~term "promote directive from winner"
          | Error _ ->
              Log.warn (fun m ->
                  m "promote directive carried unparseable address %S" addr_s))
      | Some (term, None) -> note_seen_term t term
      | None -> ())

let probe_targets e orig =
  if List.mem orig e.peers then e.peers else orig :: e.peers

(* One candidacy round. Deterministic given the reachable peer set: every
   candidate compares the same (sealed, priority, run-id) tuples, so the
   maximum is the unique winner; unreachable peers simply do not vote
   (a healed partition is reconciled by the leader's rival probes). *)
let run_election t e sb =
  Fastver_obs.Counter.incr t.m_elections;
  let t0 = Unix.gettimeofday () in
  let sealed = Fastver.verified_epoch t.sys in
  let mine = my_rank t e in
  let infos =
    List.filter_map
      (fun peer ->
        match
          Primary.announce ~timeout:e.probe_timeout peer ~term:t.seen_term
            ~sealed ~priority:e.priority ~run_id:t.self_id
        with
        | `Info i -> Some (peer, i)
        | `Unreachable why ->
            Log.debug (fun m ->
                m "election: peer %s unreachable (%s)" (Addr.to_string peer)
                  why);
            None)
      (probe_targets e t.orig_primary)
  in
  match
    List.find_opt
      (fun (_, i) -> i.Primary.p_primary && i.Primary.p_term >= t.seen_term)
      infos
  with
  | Some (peer, i) ->
      (* Someone already leads at a current term: no election needed. *)
      retarget t ~addr:peer ~term:i.Primary.p_term "found a live primary"
  | None ->
      let beaten =
        List.exists
          (fun (_, i) ->
            rank (i.Primary.p_sealed, i.Primary.p_priority, i.Primary.p_run_id)
            > mine)
          infos
      in
      let max_term =
        List.fold_left
          (fun a (_, i) -> max a i.Primary.p_term)
          (max t.seen_term (Primary.term sb))
          infos
      in
      note_seen_term t max_term;
      if beaten then begin
        (* A better candidate is live: restart the grace timer and let it
           claim the term (we will find it as primary next round, or get
           its Promote directive on the standby listener). *)
        Log.info (fun m ->
            m "election: deferring to a better-ranked candidate (our sealed \
               epoch %d)"
              sealed);
        t.lost_since <- Some (Unix.gettimeofday ())
      end
      else begin
        (* We hold the highest verified epoch among reachable candidates:
           promote in place under a term above everything seen. *)
        let term = max_term + 1 in
        Primary.promote sb ~term;
        Fastver.set_batch_size t.sys e.promote_batch;
        (match e.checkpoint_dir with
        | Some dir -> Fastver.set_auto_checkpoint t.sys ~dir
        | None -> ());
        (match t.server with Some s -> Server.set_read_only s false | None -> ());
        with_lock t.lock (fun () ->
            t.term <- term;
            t.seen_term <- term;
            t.state <- Leading);
        reset_backoff t;
        Fastver_obs.Histogram.record_span t.m_promote_s
          (Unix.gettimeofday () -. t0);
        Log.app (fun m ->
            m
              "elected: promoted to primary for term %d at %s (sealed epoch \
               %d, priority %d)"
              term
              (Addr.to_string e.listen)
              sealed e.priority);
        (* Winner directive, best-effort: losers re-subscribe here and a
           rejoining deposed primary learns it was fenced. *)
        List.iter
          (fun peer ->
            match
              Primary.send_promote ~timeout:e.probe_timeout peer ~term
                ~self:e.listen
            with
            | `Ok | `Unreachable _ -> ())
          (probe_targets e t.orig_primary)
      end

(* Leading → Standby: a rival with a greater claim is primary. Hand the
   write role back, re-enter the follower loop against the rival. *)
let step_down t sb ~term ~addr reason =
  Primary.demote sb ~term;
  Fastver.set_batch_size t.sys 0;
  Fastver.clear_auto_checkpoint t.sys;
  (match t.server with Some s -> Server.set_read_only s true | None -> ());
  with_lock t.lock (fun () ->
      note_seen_term t term;
      t.state <- Disconnected);
  (match addr with
  | Some a -> retarget t ~addr:a ~term reason
  | None -> reset_backoff t);
  Log.app (fun m -> m "stepped down at term %d: %s" term reason)

(* ---- The follower loop ---- *)

let rec run t =
  match with_lock t.lock (fun () -> t.state) with
  | Leading -> lead t
  | Halted | Stopped -> ()
  | Streaming | Disconnected -> (
      match t.conn with
      | None -> reconnect t
      | Some conn -> (
          match stream_once t conn with
          | () -> run t
          | exception
              ( Client.Protocol_error _ | Unix.Unix_error _ | Disconnected_exn
              | Client.Timeout ) ->
              if Atomic.get t.stop_flag then t.state <- Stopped
              else begin
                Log.info (fun m -> m "replication stream lost; reconnecting");
                Client.close conn;
                t.conn <- None;
                t.state <- Disconnected;
                reconnect t
              end))

(* Reconnect with the follower's existing state: drop buffered unsealed
   epochs (the primary replays them in full) and re-subscribe from the first
   epoch we have not verified, claiming the chain term. Refusals split three
   ways: "not primary"/"deposed" peers are retryable (the cluster is mid
   election — back off and, if electable, run a candidacy round once the
   grace timer fires); a floor/stale-term refusal needs a checkpoint
   re-bootstrap (terminal here — restart the follower, as the CLI demotion
   path does); a rollback refusal is integrity evidence and halts. *)
and reconnect t =
  if Atomic.get t.stop_flag then t.state <- Stopped
  else begin
    drop_unsealed t;
    check_directive t;
    if with_lock t.lock (fun () -> t.state) = Leading then lead t
    else begin
      match try_subscribe t with
      | `Streaming -> run t
      | `Retry ->
          (match (t.election, t.standby) with
          | Some e, Some sb -> (
              let now = Unix.gettimeofday () in
              match t.lost_since with
              | None -> t.lost_since <- Some now
              | Some since when now -. since >= e.election_timeout ->
                  run_election t e sb
              | Some _ -> ())
          | _ -> ());
          if with_lock t.lock (fun () -> t.state) = Leading then lead t
          else begin
            backoff_sleep t;
            reconnect t
          end
    end
  end

and try_subscribe t =
  match Client.connect t.primary with
  | Error _ -> `Retry
  | Ok conn -> (
      let from_epoch = Fastver.verified_epoch t.sys + 1 in
      let close_retry () =
        Client.close conn;
        `Retry
      in
      match
        subscribe ~timeout:t.handshake_timeout conn ~from_epoch ~term:t.term
      with
      | Ok (`Subscribed (_, rid, srv_term)) ->
          if srv_term < t.term then begin
            (* An ack below our chain term means this primary never saw the
               election that sealed our newest epoch — a stale (probably
               legacy) incarnation. Do not regress onto it. *)
            Log.warn (fun m ->
                m
                  "primary at %s speaks term %d below our chain term %d; \
                   refusing to regress"
                  (Addr.to_string t.primary) srv_term t.term);
            close_retry ()
          end
          else begin
            note_seen_term t srv_term;
            (match t.run_id with
            | Some old when not (Int64.equal old rid) ->
                Log.warn (fun m ->
                    m
                      "primary restarted (run %Ld -> %Ld); resuming from \
                       epoch %d"
                      old rid from_epoch)
            | _ -> ());
            t.run_id <- Some rid;
            t.conn <- Some conn;
            with_lock t.lock (fun () -> t.state <- Streaming);
            reset_backoff t;
            `Streaming
          end
      | Ok (`Refused e) when contains e "not primary" || contains e "deposed"
        ->
          Log.info (fun m -> m "subscribe refused (%s); will retry" e);
          close_retry ()
      | Ok (`Refused e) ->
          Client.close conn;
          halt t ~epoch:(Fastver.verified_epoch t.sys)
            ("primary refused re-subscription: " ^ e)
      | Error e ->
          Log.info (fun m -> m "subscribe failed (%s); will retry" e);
          close_retry ()
      | exception Client.Timeout ->
          Log.info (fun m ->
              m "subscribe handshake timed out after %.1fs; reconnecting"
                t.handshake_timeout);
          close_retry ()
      | exception Client.Protocol_error _ -> close_retry ()
      | exception Unix.Unix_error _ -> close_retry ())

(* The leader loop: stream hooks do the real work; this domain only watches
   for rivals (healed partitions) and deposition evidence, at
   probe_interval cadence. *)
and lead t =
  match (t.election, t.standby) with
  | Some e, Some sb ->
      let rec go () =
        if Atomic.get t.stop_flag then t.state <- Stopped
        else begin
          (match Primary.deposed sb with
          | Some (term, addr_s) ->
              let addr =
                Option.bind addr_s (fun s -> Result.to_option (Addr.parse s))
              in
              step_down t sb ~term ~addr "deposed by a higher term"
          | None ->
              let my =
                ( Primary.term sb,
                  Fastver.verified_epoch t.sys,
                  e.priority,
                  t.self_id )
              in
              List.iter
                (fun peer ->
                  if with_lock t.lock (fun () -> t.state) = Leading then
                    match
                      Primary.announce ~timeout:e.probe_timeout peer
                        ~term:(Primary.term sb)
                        ~sealed:(Fastver.verified_epoch t.sys)
                        ~priority:e.priority ~run_id:t.self_id
                    with
                    | `Info i
                      when i.Primary.p_primary
                           && ( i.Primary.p_term,
                                i.Primary.p_sealed,
                                i.Primary.p_priority,
                                i.Primary.p_run_id )
                              > my ->
                        step_down t sb ~term:i.Primary.p_term
                          ~addr:(Some peer) "rival primary outranks us"
                    | `Info _ | `Unreachable _ -> ())
                (probe_targets e t.orig_primary));
          match with_lock t.lock (fun () -> t.state) with
          | Leading ->
              let until = Unix.gettimeofday () +. e.probe_interval in
              let rec nap () =
                if not (Atomic.get t.stop_flag) then begin
                  let left = until -. Unix.gettimeofday () in
                  if left > 0.0 then begin
                    Unix.sleepf (Float.min 0.05 left);
                    nap ()
                  end
                end
              in
              nap ();
              go ()
          | Disconnected -> reconnect t
          | _ -> ()
        end
      in
      go ()
  | _ -> ()

(* ---- Lifecycle ---- *)

let mk ?server_config ?(reconnect_delay = 0.2) ?(handshake_timeout = 5.0)
    ?election ?(init_term = 0) ~primary ?listen ~conn ~run_id sys =
  let module Reg = Fastver_obs.Registry in
  let reg = Fastver.registry sys in
  Reg.counter_fn reg ~help:"Validated reads served by this follower"
    "fastver_repl_follower_reads_total" (fun () ->
      (Fastver.stats sys).gets + (Fastver.stats sys).scans);
  let server =
    match listen with
    | None -> Ok None
    | Some addr -> (
        let config =
          match server_config with
          | Some c -> { c with Server.read_only = true }
          | None -> { Server.default_config with read_only = true }
        in
        match Server.create ~config sys ~listen:addr with
        | Ok s ->
            Server.start s;
            Ok (Some s)
        | Error e -> Error e)
  in
  let standby =
    match (server, election) with
    | Error _, _ | _, None -> Ok None
    | Ok _, Some e -> (
        let pconfig =
          {
            Primary.default_config with
            checkpoint_dir = e.checkpoint_dir;
            priority = e.priority;
          }
        in
        match Primary.create ~config:pconfig ~role:Primary.Standby sys
                ~listen:e.listen
        with
        | Ok sb ->
            Primary.start sb;
            Ok (Some sb)
        | Error err -> Error ("cannot bind election listener: " ^ err))
  in
  match (server, standby) with
  | Error e, _ | _, Error e -> Error e
  | Ok server, Ok standby ->
      let rng = Random.State.make_self_init () in
      Ok
        {
          sys;
          server;
          primary;
          orig_primary = primary;
          chain =
            Verifier.Cert_chain.create
              ~mac_secret:(Fastver.config sys).mac_secret
              ~verified:(Fastver.verified_epoch sys);
          lock = Mutex.create ();
          conn = Some conn;
          state = Streaming;
          failure = None;
          run_id = Some run_id;
          applied = 0;
          max_seen = Fastver.verified_epoch sys;
          pending = Hashtbl.create 4;
          digests = Hashtbl.create 4;
          stop_flag = Atomic.make false;
          domain = None;
          reconnect_delay;
          backoff = reconnect_delay;
          rng;
          handshake_timeout;
          term = init_term;
          seen_term = init_term;
          lost_since = None;
          election;
          standby;
          self_id =
            Int64.logxor
              (Int64.of_float (Unix.gettimeofday () *. 1e6))
              (Random.State.int64 rng Int64.max_int);
          m_applied =
            Reg.counter reg ~help:"Replicated ops applied after verification"
              "fastver_repl_ops_applied_total";
          m_certs_ok =
            Reg.counter reg ~help:"Epoch boundary records that authenticated"
              "fastver_repl_certs_verified_total";
          m_certs_bad =
            Reg.counter reg ~help:"Epoch boundary records rejected"
              "fastver_repl_certs_rejected_total";
          m_lag =
            Reg.gauge reg
              ~help:"Epochs seen in the stream but not yet verified locally"
              "fastver_repl_lag_epochs";
          m_elections =
            Reg.counter reg ~help:"Election rounds started by this node"
              "fastver_repl_elections_total";
          m_promote_s =
            Reg.histogram reg ~scale:1e-9
              ~help:
                "Election-start to serving-writes latency of in-place \
                 promotions"
              "fastver_repl_promotion_seconds";
        }

let create ?server_config ?reconnect_delay ?handshake_timeout ?election
    ?(config = Fastver.Config.default) ?load ~primary ?listen ~dir () =
  (* A follower never seals epochs on its own: batch-triggered auto
     verification is disabled; epochs advance only at authenticated
     boundary records (until an election promotes it). *)
  let config = { config with Fastver.Config.batch_size = 0 } in
  let hs_timeout = Option.value handshake_timeout ~default:5.0 in
  match Client.connect primary with
  | Error e -> Error e
  | Ok conn -> (
      let fail e =
        Client.close conn;
        Error e
      in
      (* A fresh follower's state reflects no sealed epoch: subscribe from
         0 at term 0. If the primary's retained stream starts later,
         bootstrap from its newest committed checkpoint generation and tail
         from the sealed epoch — exactly the recovery path a restarted
         primary takes. *)
      match subscribe ~timeout:hs_timeout conn ~from_epoch:0 ~term:0 with
      | Error e -> fail e
      | exception Client.Timeout ->
          fail
            (Printf.sprintf "subscribe handshake timed out after %.1fs"
               hs_timeout)
      | exception Client.Protocol_error e -> fail e
      | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
      | Ok (`Subscribed (_, run_id, _)) -> (
          let sys = Fastver.create ~config () in
          (match load with Some f -> f sys | None -> ());
          match
            mk ?server_config ?reconnect_delay ?handshake_timeout ?election
              ~primary ?listen ~conn ~run_id sys
          with
          | Ok t -> Ok t
          | Error e -> fail e)
      | Ok (`Refused reason) -> (
          if not (contains reason "fetch a checkpoint") then
            fail ("primary refused subscription: " ^ reason)
          else
            match fetch_checkpoint conn ~config ~dir with
            | Error e -> fail e
            | exception Client.Timeout -> fail "checkpoint fetch timed out"
            | exception Client.Protocol_error e -> fail e
            | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
            | Ok (sys, ck_term) -> (
                let from_epoch = Fastver.verified_epoch sys + 1 in
                Log.app (fun m ->
                    m
                      "bootstrapped from primary checkpoint (verified epoch \
                       %d, term %d); tailing from %d"
                      (Fastver.verified_epoch sys)
                      ck_term from_epoch);
                match
                  subscribe ~timeout:hs_timeout conn ~from_epoch ~term:ck_term
                with
                | Ok (`Subscribed (_, run_id, _)) -> (
                    match
                      mk ?server_config ?reconnect_delay ?handshake_timeout
                        ?election ~init_term:ck_term ~primary ?listen ~conn
                        ~run_id sys
                    with
                    | Ok t -> Ok t
                    | Error e -> fail e)
                | Ok (`Refused e) ->
                    fail ("primary refused post-checkpoint subscription: " ^ e)
                | Error e -> fail e
                | exception Client.Timeout ->
                    fail "post-checkpoint subscribe handshake timed out"
                | exception Client.Protocol_error e -> fail e
                | exception Unix.Unix_error (e, _, _) ->
                    fail (Unix.error_message e))))

let start t =
  t.domain <-
    Some
      (Domain.spawn (fun () ->
           match run t with
           | () -> ()
           | exception Fastver.Integrity_violation _ ->
               () (* evidence preserved in [failure t]; reads keep serving *)
           | exception e ->
               Log.err (fun m ->
                   m "follower stream loop died: %s" (Printexc.to_string e))))

let stop t =
  Atomic.set t.stop_flag true;
  (match t.conn with Some c -> Client.close c | None -> ());
  (match t.domain with
  | Some d ->
      t.domain <- None;
      Domain.join d
  | None -> ());
  (match t.standby with Some sb -> Primary.stop sb | None -> ());
  (match t.server with Some s -> Server.stop s | None -> ());
  t.state <- Stopped

let system t = t.sys
let server t = t.server
let state t = with_lock t.lock (fun () -> t.state)
let failure t = with_lock t.lock (fun () -> t.failure)
let verified_epoch t = Fastver.verified_epoch t.sys
let applied_ops t = with_lock t.lock (fun () -> t.applied)
let run_id t = t.run_id
let term t = with_lock t.lock (fun () -> t.term)
let standby t = t.standby
