(** Crash-safe checkpoint I/O.

    Checkpoint component files are written with the classic durable-write
    protocol: stream into [file.tmp], [fsync] the data, atomically [rename]
    over the final name, then [fsync] the containing directory so the rename
    itself is durable. A crash at any byte offset therefore leaves either the
    previous complete file or a stray [.tmp] — never a half-written file
    under the committed name.

    A checkpoint {e generation} ([ckpt-<n>/]) is committed by its manifest: a
    file, written last with the same protocol, carrying the SHA-256 of every
    component file. Recovery trusts a generation only after re-hashing every
    component against the manifest, so torn or partially-synced generations
    are detectable and can be discarded in favour of the previous one.

    The module also hosts the crash-fault-injection hook used by the sweep
    tests: an armed fault makes the writer raise {!Injected_crash} at a
    chosen cut point (after N bytes, before a file's fsync — simulated by
    truncating the temp file, as a real crash would tear the unsynced tail —
    or before its rename), leaving the directory exactly as a [kill -9] at
    that instant would. *)

exception Injected_crash of string
(** Simulated crash: the process "died" at the armed cut point. Only raised
    while a fault is armed (tests); production writes never see it. *)

type fault =
  | Die_after_bytes of int
      (** Crash once this many bytes have been written, cumulatively across
          every file since {!arm}. The byte at the cut point and everything
          after it are lost. *)
  | Die_before_fsync of string
      (** Crash while finalising the file with this basename, before its
          data reaches disk: the temp file is torn (truncated to half) and
          never renamed. *)
  | Die_before_rename of string
      (** Crash after the named file's data is synced but before the rename
          commits it: the complete temp file is left behind, the committed
          name untouched. *)

val arm : fault -> unit
(** Arm a fault (resetting the cumulative byte counter). Test-only. *)

val disarm : unit -> unit

val bytes_written : unit -> int
(** Cumulative bytes written through {!write} since the last {!arm} — lets a
    sweep test measure a checkpoint's total write volume (arm a fault that
    never fires, checkpoint, read this) and then pick cut points. *)

(** {2 Atomic file writing} *)

type writer

val write : writer -> string -> unit
val write_bytes : writer -> Bytes.t -> unit

val with_atomic_file : string -> (writer -> 'a) -> 'a
(** [with_atomic_file path f] runs [f] writing to [path ^ ".tmp"], then
    fsyncs, renames onto [path] and fsyncs the directory. If [f] raises (or
    an armed fault fires) the committed [path] is left untouched. *)

val write_file_atomic : string -> string -> unit
(** Whole-string convenience over {!with_atomic_file}. *)

val fsync_dir : string -> unit
(** Best-effort directory fsync (no-op where unsupported). *)

(** {2 Manifests and generations} *)

val sha256_file : string -> (string, string) result
(** Streaming SHA-256 of a file, as lowercase hex. *)

module Manifest : sig
  type entry = { name : string; size : int; sha256_hex : string }
  type t = { generation : int; entries : entry list }

  val filename : string
  (** ["MANIFEST"]. *)

  val entry_of_file : dir:string -> string -> (entry, string) result
  (** Hash an existing component file into a manifest entry. *)

  val write : dir:string -> t -> unit
  (** Atomically write [dir/MANIFEST] — the generation's commit point. *)

  val read : dir:string -> (t, string) result
  (** Total: any malformed manifest is an [Error], never an exception. *)

  val verify : dir:string -> t -> (unit, string) result
  (** Re-hash every entry's file; [Error] on a missing file, size mismatch
      or digest mismatch. *)
end

val generation_dir_name : int -> string
(** [ckpt-<n>]. *)

val generations : string -> (int * string) list
(** All [ckpt-<n>] subdirectories of a checkpoint directory as
    [(n, absolute_path)], newest first. Missing or unreadable directories
    yield []. *)

val remove_tree : string -> unit
(** Recursively delete a file or directory, ignoring errors (used to discard
    torn generations and stray temp files). *)
