(** FASTER-style epoch protection.

    Threads operating on the store enter an epoch; maintenance actions
    (flushing a log region, completing a checkpoint) are deferred until every
    thread has observed a newer epoch, guaranteeing no thread still works on
    retired state. This is the CPR building block the paper's durability
    story leans on (§7): FastVer aligns its verification epochs with the
    store's checkpoint epochs. *)

type t

val create : n_threads:int -> t

val acquire : t -> tid:int -> unit
(** Enter the current epoch (refreshing if already entered). *)

val release : t -> tid:int -> unit
(** Leave epoch protection. *)

val bump : t -> on_safe:(unit -> unit) -> int
(** Advance the global epoch and register [on_safe] to run once every thread
    has moved past the old epoch. Returns the new epoch. *)

val refresh : t -> tid:int -> unit
(** Re-enter the current epoch and run any actions that became safe. *)

val current : t -> int
val safe : t -> int
(** The highest epoch such that no thread is still inside an older one. *)
