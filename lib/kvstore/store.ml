type 'v codec = { encode : 'v -> string; decode : string -> 'v }

let string_codec = { encode = Fun.id; decode = Fun.id }

module Cold = Fastver_cold.Cold

type 'v body =
  | In_memory of { mutable value : 'v; mutable aux : int64 }
  | Spilled of { file_off : int; len : int; aux : int64 }
  | Cold_ref of { cref : Cold.rref; aux : int64 }

type 'v slot = { key : Key.t; mutable body : 'v body; prev : int }

let aux_of_body = function
  | In_memory { aux; _ } | Spilled { aux; _ } | Cold_ref { aux; _ } -> aux

type stats = {
  reads : int;
  writes : int;
  rcu_copies : int;
  spill_reads : int;
}

(* Live counters: atomics, so gets in one domain and stats snapshots in
   another never race (reads were bumped outside the stripe lock). *)
type stats_live = {
  a_reads : int Atomic.t;
  a_writes : int Atomic.t;
  a_rcu_copies : int Atomic.t;
  a_spill_reads : int Atomic.t;
}

let bump a = ignore (Atomic.fetch_and_add a 1)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type 'v t = {
  index : int Key.Tbl.t;
  mutable chunks : 'v slot option array array;
  mutable tail : int; (* next free address *)
  mutable_region : int;
  codec : 'v codec;
  stripes : Mutex.t array;
  spill : (string * int) option;
  spill_lock : Mutex.t;
      (* Serialises every seek/read/write on the shared spill channels.
         Stripe locks only serialise per-key access: two gets of spilled
         keys in different stripes would otherwise race seek_in against
         really_input_string and return each other's bytes. *)
  mutable spill_chan : (in_channel * out_channel) option;
  mutable spill_end : int; (* bytes written to the spill file *)
  mutable spilled_through : int; (* addresses < this may be on disk *)
  cold : Cold.t option;
  mutable demoted_through : int; (* addresses < this may be in the cold tier *)
  stats : stats_live;
}

let create ?(mutable_region_entries = 1 lsl 20) ?spill ?cold ~codec () =
  {
    index = Key.Tbl.create 4096;
    chunks = Array.make 16 [||];
    tail = 0;
    mutable_region = mutable_region_entries;
    codec;
    stripes = Array.init 256 (fun _ -> Mutex.create ());
    spill;
    spill_lock = Mutex.create ();
    spill_chan = None;
    spill_end = 0;
    spilled_through = 0;
    cold;
    demoted_through = 0;
    stats =
      {
        a_reads = Atomic.make 0;
        a_writes = Atomic.make 0;
        a_rcu_copies = Atomic.make 0;
        a_spill_reads = Atomic.make 0;
      };
  }

let stats t =
  {
    reads = Atomic.get t.stats.a_reads;
    writes = Atomic.get t.stats.a_writes;
    rcu_copies = Atomic.get t.stats.a_rcu_copies;
    spill_reads = Atomic.get t.stats.a_spill_reads;
  }
let length t = Key.Tbl.length t.index
let log_size t = t.tail

let slot t addr =
  match t.chunks.(addr lsr chunk_bits).(addr land (chunk_size - 1)) with
  | Some s -> s
  | None -> assert false

let ensure_chunk t ci =
  if ci >= Array.length t.chunks then begin
    let chunks = Array.make (2 * Array.length t.chunks) [||] in
    Array.blit t.chunks 0 chunks 0 (Array.length t.chunks);
    t.chunks <- chunks
  end;
  if Array.length t.chunks.(ci) = 0 then
    t.chunks.(ci) <- Array.make chunk_size None

let append t s =
  let addr = t.tail in
  let ci = addr lsr chunk_bits in
  ensure_chunk t ci;
  t.chunks.(ci).(addr land (chunk_size - 1)) <- Some s;
  t.tail <- addr + 1;
  addr

let readonly_boundary t = max 0 (t.tail - t.mutable_region)

let with_stripe t key f =
  let m = t.stripes.(Key.hash key land 255) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Misconfiguration (a spilled or cold record with no backing tier) is a
   total [Error _], not an exception: the server answers the one request
   with a failure instead of dying mid-request. *)
let spill_channels t =
  match (t.spill_chan, t.spill) with
  | Some c, _ -> Ok c
  | None, None -> Error "Store: spill not configured"
  | None, Some (path, _) -> (
      match
        ( open_out_gen [ Open_creat; Open_wronly; Open_binary ] 0o644 path,
          open_in_bin path )
      with
      | oc, ic ->
          t.spill_end <- in_channel_length ic;
          seek_out oc t.spill_end;
          t.spill_chan <- Some (ic, oc);
          Ok (ic, oc)
      | exception Sys_error e -> Error ("Store: spill open failed: " ^ e))

let with_spill_lock t f =
  Mutex.lock t.spill_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.spill_lock) f

let decode_value t raw =
  match t.codec.decode raw with
  | v -> Ok v
  | exception _ -> Error "Store: undecodable record payload"

let read_spilled t ~file_off ~len =
  let raw =
    with_spill_lock t (fun () ->
        match spill_channels t with
        | Error _ as e -> e
        | Ok (ic, _) -> (
            seek_in ic file_off;
            bump t.stats.a_spill_reads;
            match really_input_string ic len with
            | raw -> Ok raw
            | exception End_of_file -> Error "Store: spill read truncated"))
  in
  Result.bind raw (decode_value t)

(* A cold read that raced compaction (the segment was rewritten and retired
   between fetching the reference and reading it) reports [`Stale]; the
   rewrite installed a fresh reference first, so re-reading the slot body
   succeeds. Bounded retries: anything persistent is a real error. *)
let rec current ?(retries = 3) t key =
  match Key.Tbl.find_opt t.index key with
  | None -> Ok None
  | Some addr -> (
      let s = slot t addr in
      match s.body with
      | In_memory { value; aux } -> Ok (Some (addr, value, aux))
      | Spilled { file_off; len; aux } ->
          Result.map
            (fun v -> Some (addr, v, aux))
            (read_spilled t ~file_off ~len)
      | Cold_ref { cref; aux } -> (
          match t.cold with
          | None -> Error "Store: cold tier not configured"
          | Some c -> (
              match Cold.get c ~key cref with
              | Ok (raw, rec_aux) ->
                  if not (Int64.equal rec_aux aux) then
                    Error "Store: cold record aux disagrees with index"
                  else
                    Result.map (fun v -> Some (addr, v, aux)) (decode_value t raw)
              | Error `Stale when retries > 0 ->
                  current ~retries:(retries - 1) t key
              | Error `Stale -> Error "Store: cold segment retired during read"
              | Error (`Fail e) -> Error e)))

let get t key =
  bump t.stats.a_reads;
  with_stripe t key (fun () ->
      Result.map (Option.map (fun (_, v, a) -> (v, a))) (current t key))

let note_dead_body t body =
  match (body, t.cold) with
  | Cold_ref { cref; _ }, Some c -> Cold.note_dead c cref
  | _ -> ()

(* Install a new (value, aux) for [key]; in place when the current version is
   in the mutable region, copy-on-write otherwise. Caller holds the stripe. *)
let install t key value aux =
  bump t.stats.a_writes;
  let in_place =
    match Key.Tbl.find_opt t.index key with
    | Some addr when addr >= readonly_boundary t -> (
        (* Recovery can land cold references in the mutable region; those
           update copy-on-write like any other on-disk version. *)
        match (slot t addr).body with
        | In_memory _ -> Some addr
        | Spilled _ | Cold_ref _ -> None)
    | Some _ | None -> None
  in
  match in_place with
  | Some addr -> (
      match (slot t addr).body with
      | In_memory b ->
          b.value <- value;
          b.aux <- aux
      | Spilled _ | Cold_ref _ -> assert false)
  | None ->
      (match Key.Tbl.find_opt t.index key with
      | Some prev ->
          bump t.stats.a_rcu_copies;
          note_dead_body t (slot t prev).body;
          let addr = append t { key; body = In_memory { value; aux }; prev } in
          Key.Tbl.replace t.index key addr
      | None ->
          let addr =
            append t { key; body = In_memory { value; aux }; prev = -1 }
          in
          Key.Tbl.replace t.index key addr)

let put t key value ~aux =
  with_stripe t key (fun () -> install t key value aux)

(* Aux-only compare: every body variant carries its aux word, so the CAS
   never needs the value bytes — a cold or spilled record CASes without
   touching disk. *)
let try_cas t key ~expected_aux value ~aux =
  with_stripe t key (fun () ->
      match Key.Tbl.find_opt t.index key with
      | None -> false
      | Some addr ->
          if Int64.equal (aux_of_body (slot t addr).body) expected_aux then begin
            install t key value aux;
            true
          end
          else false)

let update t key f =
  with_stripe t key (fun () ->
      match current t key with
      | Error _ as e -> e
      | Ok prior ->
          let value, aux = f (Option.map (fun (_, v, a) -> (v, a)) prior) in
          install t key value aux;
          Ok ())

let delete t key =
  with_stripe t key (fun () ->
      (match Key.Tbl.find_opt t.index key with
      | Some addr -> note_dead_body t (slot t addr).body
      | None -> ());
      Key.Tbl.remove t.index key)

exception Iter_stop of string

let iter_live t f =
  match
    Key.Tbl.iter
      (fun key addr ->
        match (slot t addr).body with
        | In_memory { value; aux } -> f key value aux
        | Spilled { file_off; len; aux } -> (
            match read_spilled t ~file_off ~len with
            | Ok v -> f key v aux
            | Error e -> raise (Iter_stop e))
        | Cold_ref { cref; aux } -> (
            match t.cold with
            | None -> raise (Iter_stop "Store: cold tier not configured")
            | Some c -> (
                match Cold.get c ~key cref with
                | Ok (raw, _) -> (
                    match decode_value t raw with
                    | Ok v -> f key v aux
                    | Error e -> raise (Iter_stop e))
                | Error `Stale -> raise (Iter_stop "Store: stale cold read")
                | Error (`Fail e) -> raise (Iter_stop e))))
      t.index
  with
  | () -> Ok ()
  | exception Iter_stop e -> Error e

let iter_aux t f = Key.Tbl.iter (fun key addr -> f key (aux_of_body (slot t addr).body)) t.index

let spill_now t =
  match t.spill with
  | None -> Error "Store: spill not configured"
  | Some (_, budget) ->
      let keep_from = max (readonly_boundary t) (t.tail - budget) in
      if keep_from <= t.spilled_through then Ok ()
      else
        with_spill_lock t @@ fun () ->
        match spill_channels t with
        | Error _ as e -> e
        | Ok (_, oc) ->
            for addr = t.spilled_through to keep_from - 1 do
              let ci = addr lsr chunk_bits in
              match t.chunks.(ci).(addr land (chunk_size - 1)) with
              | None -> ()
              | Some s -> (
                  match s.body with
                  | Spilled _ | Cold_ref _ -> ()
                  | In_memory { value; aux } ->
                      (* Superseded versions are simply dropped. *)
                      if Key.Tbl.find_opt t.index s.key = Some addr then begin
                        let data = t.codec.encode value in
                        let file_off = t.spill_end in
                        output_string oc data;
                        t.spill_end <- t.spill_end + String.length data;
                        s.body <-
                          Spilled { file_off; len = String.length data; aux }
                      end
                      else
                        t.chunks.(ci).(addr land (chunk_size - 1)) <- None)
            done;
            flush oc;
            t.spilled_through <- keep_from;
            Ok ()

(* {2 Cold-tier demotion and compaction} *)

let cold_tier t = t.cold

(* Demote cooling record versions (older than the in-memory budget, outside
   the mutable region) to the cold tier. Unlike [spill_now] this runs under
   each key's stripe lock, so it is safe while serving: the body flip cannot
   race an install or a read of the same key. *)
let demote_now t ~budget =
  match t.cold with
  | None -> Ok 0
  | Some c ->
      let keep_from = max (readonly_boundary t) (t.tail - budget) in
      if keep_from <= t.demoted_through then Ok 0
      else begin
        let demoted = ref 0 in
        let err = ref None in
        let addr = ref t.demoted_through in
        while !err = None && !addr < keep_from do
          let a = !addr in
          let ci = a lsr chunk_bits in
          (match t.chunks.(ci).(a land (chunk_size - 1)) with
          | None -> ()
          | Some s ->
              with_stripe t s.key (fun () ->
                  if Key.Tbl.find_opt t.index s.key = Some a then begin
                    match s.body with
                    | Spilled _ | Cold_ref _ -> ()
                    | In_memory { value; aux } -> (
                        let data = t.codec.encode value in
                        match Cold.append c ~key:s.key ~aux ~value:data with
                        | Ok cref ->
                            s.body <- Cold_ref { cref; aux };
                            incr demoted
                        | Error e -> err := Some e)
                  end
                  else begin
                    (* superseded version: drop it, account dead cold bytes *)
                    note_dead_body t s.body;
                    t.chunks.(ci).(a land (chunk_size - 1)) <- None
                  end));
          if !err = None then begin
            incr addr;
            t.demoted_through <- !addr
          end
        done;
        match !err with Some e -> Error e | None -> Ok !demoted
      end

(* Rewrite the live records out of garbage-heavy sealed segments, then retire
   those segments. Raw record bytes move without a decode round-trip; the
   authenticated read validates them before the rewrite. *)
let compact_cold t ~min_dead_ratio =
  match t.cold with
  | None -> Ok 0
  | Some c -> (
      match Cold.gc_candidates c ~min_dead_ratio with
      | [] -> Ok 0
      | cands ->
          let in_cand seg = List.mem seg cands in
          let chunks = t.chunks and tail = t.tail in
          let rewritten = ref 0 in
          let err = ref None in
          let addr = ref 0 in
          while !err = None && !addr < tail do
            let a = !addr in
            let ci = a lsr chunk_bits in
            (match chunks.(ci).(a land (chunk_size - 1)) with
            | None -> ()
            | Some s ->
                with_stripe t s.key (fun () ->
                    match s.body with
                    | Cold_ref { cref; aux }
                      when in_cand cref.Cold.seg
                           && Key.Tbl.find_opt t.index s.key = Some a -> (
                        match Cold.get c ~key:s.key cref with
                        | Ok (raw, _) -> (
                            match Cold.append c ~key:s.key ~aux ~value:raw with
                            | Ok cref' ->
                                s.body <- Cold_ref { cref = cref'; aux };
                                Cold.note_dead c cref;
                                Cold.note_gc_rewrite c;
                                incr rewritten
                            | Error e -> err := Some e)
                        | Error `Stale -> ()
                        | Error (`Fail e) -> err := Some e)
                    | _ -> ()));
            incr addr
          done;
          (match !err with
          | Some e -> Error e
          | None ->
              Cold.retire_segments c cands;
              Ok !rewritten))

(* Checkpoint format FVCKPT03: magic, version(8), count(8), then per record
   key(34) aux(8) tag(1) and either an inline payload (tag 0: len(4) data)
   or a cold-tier reference (tag 1: seg(4) off(8) len(4)) — cold values are
   already durable in their segment, so the checkpoint stores the pointer
   and the cold manifest vouches for the segment. FVCKPT02 (inline-only, no
   tag byte) is still readable; FVCKPT01 truncated the version through int32
   and is rejected explicitly. *)
let magic = "FVCKPT03"
let magic_v2 = "FVCKPT02"
let legacy_magic = "FVCKPT01" (* int32 version header; no longer readable *)

let checkpoint t ~path ~version =
  Ckpt_io.with_atomic_file path @@ fun w ->
  Ckpt_io.write w magic;
  let header = Bytes.create 16 in
  Bytes.set_int64_le header 0 (Int64.of_int version);
  Bytes.set_int64_le header 8 (Int64.of_int (length t));
  Ckpt_io.write_bytes w header;
  let write_inline aux data =
    let meta = Bytes.create 13 in
    Bytes.set_int64_le meta 0 aux;
    Bytes.set meta 8 '\000';
    Bytes.set_int32_le meta 9 (Int32.of_int (String.length data));
    Ckpt_io.write_bytes w meta;
    Ckpt_io.write w data
  in
  Key.Tbl.iter
    (fun key addr ->
      Ckpt_io.write w (Key.encode key);
      match (slot t addr).body with
      | In_memory { value; aux } -> write_inline aux (t.codec.encode value)
      | Spilled { file_off; len; aux } -> (
          match read_spilled t ~file_off ~len with
          | Ok v -> write_inline aux (t.codec.encode v)
          | Error e -> failwith ("checkpoint: " ^ e))
      | Cold_ref { cref; aux } ->
          let meta = Bytes.create 25 in
          Bytes.set_int64_le meta 0 aux;
          Bytes.set meta 8 '\001';
          Bytes.set_int32_le meta 9 (Int32.of_int cref.Cold.seg);
          Bytes.set_int64_le meta 13 (Int64.of_int cref.Cold.off);
          Bytes.set_int32_le meta 21 (Int32.of_int cref.Cold.len);
          Ckpt_io.write_bytes w meta)
    t.index

(* Every length and count read from disk is validated against the bytes
   actually remaining in the file before it is used for allocation or
   arithmetic: the checkpoint is untrusted input, and recovery must be total
   — any malformed file is an [Error], never an exception (and never an
   attempt to allocate a record the file could not possibly contain). *)
let put_cold t key ~cref ~aux =
  with_stripe t key (fun () ->
      let addr = append t { key; body = Cold_ref { cref; aux }; prev = -1 } in
      Key.Tbl.replace t.index key addr);
  match t.cold with Some c -> Cold.note_live c cref | None -> ()

let recover ?mutable_region_entries ?spill ?cold ~codec ~path () =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          match really_input_string ic (String.length magic) with
          | exception End_of_file -> Error "checkpoint truncated"
          | m when m = legacy_magic ->
              Error
                "unsupported legacy checkpoint format FVCKPT01; \
                 re-checkpoint with this release"
          | m when m <> magic && m <> magic_v2 -> Error "bad checkpoint magic"
          | m -> (
              let v3 = m = magic in
              try
                let header = really_input_string ic 16 in
                let version64 = String.get_int64_le header 0 in
                if version64 < 0L || Int64.of_int (Int64.to_int version64) <> version64
                then failwith "checkpoint: bad version";
                let version = Int64.to_int version64 in
                let count64 = String.get_int64_le header 8 in
                (* Each record occupies at least 34 + 12 bytes (v2) or
                   34 + 13 (v3, inline empty payload). *)
                let remaining = size - String.length magic - 16 in
                if
                  count64 < 0L
                  || Int64.of_int (Int64.to_int count64) <> count64
                  || Int64.to_int count64 > remaining / 46
                then failwith "checkpoint: implausible record count";
                let count = Int64.to_int count64 in
                let t = create ?mutable_region_entries ?spill ?cold ~codec () in
                let decode_key kenc =
                  let depth = String.get_uint16_le kenc 0 in
                  let path32 = String.sub kenc 2 32 in
                  if depth = Key.max_depth then Key.of_bytes32 path32
                  else
                    (* Only data keys appear in data checkpoints; merkle
                       trees are rebuilt by the integrity layer. *)
                    failwith "non-data key in checkpoint"
                in
                let put_inline key aux len =
                  if len < 0 || len > size - pos_in ic then
                    failwith "checkpoint: record length exceeds file";
                  let data = really_input_string ic len in
                  let value =
                    match codec.decode data with
                    | v -> v
                    | exception _ -> failwith "checkpoint: undecodable record"
                  in
                  put t key value ~aux
                in
                for _ = 1 to count do
                  let kenc = really_input_string ic 34 in
                  if v3 then begin
                    let meta = really_input_string ic 9 in
                    let aux = String.get_int64_le meta 0 in
                    match meta.[8] with
                    | '\000' ->
                        let len32 = really_input_string ic 4 in
                        put_inline (decode_key kenc) aux
                          (Int32.to_int (String.get_int32_le len32 0))
                    | '\001' -> (
                        let refb = really_input_string ic 16 in
                        let seg = Int32.to_int (String.get_int32_le refb 0) in
                        let off64 = String.get_int64_le refb 4 in
                        let len = Int32.to_int (String.get_int32_le refb 12) in
                        if
                          off64 < 0L
                          || Int64.of_int (Int64.to_int off64) <> off64
                          || seg < 0 || len < 0
                        then failwith "checkpoint: malformed cold reference";
                        let cref =
                          { Cold.seg; off = Int64.to_int off64; len }
                        in
                        match cold with
                        | None ->
                            failwith
                              "checkpoint references cold segments but no \
                               cold tier is configured"
                        | Some c -> (
                            match Cold.validate_ref c cref with
                            | Error e -> failwith ("checkpoint: " ^ e)
                            | Ok () -> put_cold t (decode_key kenc) ~cref ~aux))
                    | _ -> failwith "checkpoint: unknown record tag"
                  end
                  else begin
                    let meta = really_input_string ic 12 in
                    let aux = String.get_int64_le meta 0 in
                    let len = Int32.to_int (String.get_int32_le meta 8) in
                    put_inline (decode_key kenc) aux len
                  end
                done;
                Ok (t, version)
              with
              | End_of_file -> Error "checkpoint truncated"
              | Invalid_argument _ -> Error "checkpoint corrupt"
              | Failure e -> Error e)))
