type 'v codec = { encode : 'v -> string; decode : string -> 'v }

let string_codec = { encode = Fun.id; decode = Fun.id }

type 'v body =
  | In_memory of { mutable value : 'v; mutable aux : int64 }
  | Spilled of { file_off : int; len : int; aux : int64 }

type 'v slot = { key : Key.t; mutable body : 'v body; prev : int }

type stats = {
  reads : int;
  writes : int;
  rcu_copies : int;
  spill_reads : int;
}

(* Live counters: atomics, so gets in one domain and stats snapshots in
   another never race (reads were bumped outside the stripe lock). *)
type stats_live = {
  a_reads : int Atomic.t;
  a_writes : int Atomic.t;
  a_rcu_copies : int Atomic.t;
  a_spill_reads : int Atomic.t;
}

let bump a = ignore (Atomic.fetch_and_add a 1)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type 'v t = {
  index : int Key.Tbl.t;
  mutable chunks : 'v slot option array array;
  mutable tail : int; (* next free address *)
  mutable_region : int;
  codec : 'v codec;
  stripes : Mutex.t array;
  spill : (string * int) option;
  spill_lock : Mutex.t;
      (* Serialises every seek/read/write on the shared spill channels.
         Stripe locks only serialise per-key access: two gets of spilled
         keys in different stripes would otherwise race seek_in against
         really_input_string and return each other's bytes. *)
  mutable spill_chan : (in_channel * out_channel) option;
  mutable spill_end : int; (* bytes written to the spill file *)
  mutable spilled_through : int; (* addresses < this may be on disk *)
  stats : stats_live;
}

let create ?(mutable_region_entries = 1 lsl 20) ?spill ~codec () =
  {
    index = Key.Tbl.create 4096;
    chunks = Array.make 16 [||];
    tail = 0;
    mutable_region = mutable_region_entries;
    codec;
    stripes = Array.init 256 (fun _ -> Mutex.create ());
    spill;
    spill_lock = Mutex.create ();
    spill_chan = None;
    spill_end = 0;
    spilled_through = 0;
    stats =
      {
        a_reads = Atomic.make 0;
        a_writes = Atomic.make 0;
        a_rcu_copies = Atomic.make 0;
        a_spill_reads = Atomic.make 0;
      };
  }

let stats t =
  {
    reads = Atomic.get t.stats.a_reads;
    writes = Atomic.get t.stats.a_writes;
    rcu_copies = Atomic.get t.stats.a_rcu_copies;
    spill_reads = Atomic.get t.stats.a_spill_reads;
  }
let length t = Key.Tbl.length t.index
let log_size t = t.tail

let slot t addr =
  match t.chunks.(addr lsr chunk_bits).(addr land (chunk_size - 1)) with
  | Some s -> s
  | None -> assert false

let ensure_chunk t ci =
  if ci >= Array.length t.chunks then begin
    let chunks = Array.make (2 * Array.length t.chunks) [||] in
    Array.blit t.chunks 0 chunks 0 (Array.length t.chunks);
    t.chunks <- chunks
  end;
  if Array.length t.chunks.(ci) = 0 then
    t.chunks.(ci) <- Array.make chunk_size None

let append t s =
  let addr = t.tail in
  let ci = addr lsr chunk_bits in
  ensure_chunk t ci;
  t.chunks.(ci).(addr land (chunk_size - 1)) <- Some s;
  t.tail <- addr + 1;
  addr

let readonly_boundary t = max 0 (t.tail - t.mutable_region)

let with_stripe t key f =
  let m = t.stripes.(Key.hash key land 255) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let spill_channels t =
  match (t.spill_chan, t.spill) with
  | Some c, _ -> c
  | None, None -> invalid_arg "Store: spill not configured"
  | None, Some (path, _) ->
      let oc =
        open_out_gen [ Open_creat; Open_wronly; Open_binary ] 0o644 path
      and ic = open_in_bin path in
      t.spill_end <- in_channel_length ic;
      seek_out oc t.spill_end;
      t.spill_chan <- Some (ic, oc);
      (ic, oc)

let with_spill_lock t f =
  Mutex.lock t.spill_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.spill_lock) f

let read_spilled t ~file_off ~len =
  let raw =
    with_spill_lock t (fun () ->
        let ic, _ = spill_channels t in
        seek_in ic file_off;
        bump t.stats.a_spill_reads;
        really_input_string ic len)
  in
  t.codec.decode raw

let current t key =
  match Key.Tbl.find_opt t.index key with
  | None -> None
  | Some addr -> (
      let s = slot t addr in
      match s.body with
      | In_memory { value; aux } -> Some (addr, value, aux)
      | Spilled { file_off; len; aux } ->
          Some (addr, read_spilled t ~file_off ~len, aux))

let get t key =
  bump t.stats.a_reads;
  with_stripe t key (fun () ->
      Option.map (fun (_, v, a) -> (v, a)) (current t key))

(* Install a new (value, aux) for [key]; in place when the current version is
   in the mutable region, copy-on-write otherwise. Caller holds the stripe. *)
let install t key value aux =
  bump t.stats.a_writes;
  match Key.Tbl.find_opt t.index key with
  | Some addr when addr >= readonly_boundary t -> (
      let s = slot t addr in
      match s.body with
      | In_memory b ->
          b.value <- value;
          b.aux <- aux
      | Spilled _ ->
          (* Mutable-region entries are never spilled. *)
          assert false)
  | (Some _ | None) as prior ->
      let prev = Option.value prior ~default:(-1) in
      if prev >= 0 then bump t.stats.a_rcu_copies;
      let addr = append t { key; body = In_memory { value; aux }; prev } in
      Key.Tbl.replace t.index key addr

let put t key value ~aux =
  with_stripe t key (fun () -> install t key value aux)

let try_cas t key ~expected_aux value ~aux =
  with_stripe t key (fun () ->
      match current t key with
      | Some (_, _, cur_aux) when Int64.equal cur_aux expected_aux ->
          install t key value aux;
          true
      | Some _ | None -> false)

let update t key f =
  with_stripe t key (fun () ->
      let prior = Option.map (fun (_, v, a) -> (v, a)) (current t key) in
      let value, aux = f prior in
      install t key value aux)

let delete t key = with_stripe t key (fun () -> Key.Tbl.remove t.index key)

let iter_live t f =
  Key.Tbl.iter
    (fun key addr ->
      match (slot t addr).body with
      | In_memory { value; aux } -> f key value aux
      | Spilled { file_off; len; aux } ->
          f key (read_spilled t ~file_off ~len) aux)
    t.index

let spill_now t =
  match t.spill with
  | None -> ()
  | Some (_, budget) ->
      let keep_from = max (readonly_boundary t) (t.tail - budget) in
      if keep_from > t.spilled_through then
        with_spill_lock t @@ fun () ->
        let _, oc = spill_channels t in
        for addr = t.spilled_through to keep_from - 1 do
          let ci = addr lsr chunk_bits in
          match t.chunks.(ci).(addr land (chunk_size - 1)) with
          | None -> ()
          | Some s -> (
              match s.body with
              | Spilled _ -> ()
              | In_memory { value; aux } ->
                  (* Superseded versions are simply dropped. *)
                  if Key.Tbl.find_opt t.index s.key = Some addr then begin
                    let data = t.codec.encode value in
                    let file_off = t.spill_end in
                    output_string oc data;
                    t.spill_end <- t.spill_end + String.length data;
                    s.body <-
                      Spilled { file_off; len = String.length data; aux }
                  end
                  else
                    t.chunks.(ci).(addr land (chunk_size - 1)) <- None)
        done;
        flush oc;
        t.spilled_through <- keep_from

(* Checkpoint format: magic, version(8), count(8), then per record
   key(34) aux(8) len(4) payload. The version is a full int64 — the verified
   epoch must round-trip exactly; FVCKPT01 truncated it through int32. *)
let magic = "FVCKPT02"
let legacy_magic = "FVCKPT01" (* int32 version header; no longer readable *)

let checkpoint t ~path ~version =
  Ckpt_io.with_atomic_file path @@ fun w ->
  Ckpt_io.write w magic;
  let header = Bytes.create 16 in
  Bytes.set_int64_le header 0 (Int64.of_int version);
  Bytes.set_int64_le header 8 (Int64.of_int (length t));
  Ckpt_io.write_bytes w header;
  iter_live t (fun key value aux ->
      Ckpt_io.write w (Key.encode key);
      let data = t.codec.encode value in
      let meta = Bytes.create 12 in
      Bytes.set_int64_le meta 0 aux;
      Bytes.set_int32_le meta 8 (Int32.of_int (String.length data));
      Ckpt_io.write_bytes w meta;
      Ckpt_io.write w data)

(* Every length and count read from disk is validated against the bytes
   actually remaining in the file before it is used for allocation or
   arithmetic: the checkpoint is untrusted input, and recovery must be total
   — any malformed file is an [Error], never an exception (and never an
   attempt to allocate a record the file could not possibly contain). *)
let recover ?mutable_region_entries ?spill ~codec ~path () =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic -> (
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          match really_input_string ic (String.length magic) with
          | exception End_of_file -> Error "checkpoint truncated"
          | m when m = legacy_magic ->
              Error
                "unsupported legacy checkpoint format FVCKPT01; \
                 re-checkpoint with this release"
          | m when m <> magic -> Error "bad checkpoint magic"
          | _ -> (
              try
                let header = really_input_string ic 16 in
                let version64 = String.get_int64_le header 0 in
                if version64 < 0L || Int64.of_int (Int64.to_int version64) <> version64
                then failwith "checkpoint: bad version";
                let version = Int64.to_int version64 in
                let count64 = String.get_int64_le header 8 in
                (* Each record occupies at least 34 + 12 bytes. *)
                let remaining = size - String.length magic - 16 in
                if
                  count64 < 0L
                  || Int64.of_int (Int64.to_int count64) <> count64
                  || Int64.to_int count64 > remaining / 46
                then failwith "checkpoint: implausible record count";
                let count = Int64.to_int count64 in
                let t = create ?mutable_region_entries ?spill ~codec () in
                for _ = 1 to count do
                  let kenc = really_input_string ic 34 in
                  let meta = really_input_string ic 12 in
                  let aux = String.get_int64_le meta 0 in
                  let len = Int32.to_int (String.get_int32_le meta 8) in
                  if len < 0 || len > size - pos_in ic then
                    failwith "checkpoint: record length exceeds file";
                  let data = really_input_string ic len in
                  let depth = String.get_uint16_le kenc 0 in
                  let key =
                    let path32 = String.sub kenc 2 32 in
                    if depth = Key.max_depth then Key.of_bytes32 path32
                    else
                      (* Only data keys appear in data checkpoints; merkle
                         trees are rebuilt by the integrity layer. *)
                      failwith "non-data key in checkpoint"
                  in
                  let value =
                    match codec.decode data with
                    | v -> v
                    | exception _ -> failwith "checkpoint: undecodable record"
                  in
                  put t key value ~aux
                done;
                Ok (t, version)
              with
              | End_of_file -> Error "checkpoint truncated"
              | Invalid_argument _ -> Error "checkpoint corrupt"
              | Failure e -> Error e)))
