(* A simplified (single-process) rendering of FASTER's epoch framework.
   Thread-local epochs live in an int array; [max_int] marks "not entered". *)

type action = { epoch : int; run : unit -> unit }

type t = {
  mutable global : int;
  locals : int array;
  mutable pending : action list; (* newest first *)
  mutable safe_cache : int;
}

let not_entered = max_int

let create ~n_threads =
  if n_threads < 1 then invalid_arg "Epoch_protection.create";
  {
    global = 1;
    locals = Array.make n_threads not_entered;
    pending = [];
    safe_cache = 0;
  }

let compute_safe t =
  let m = Array.fold_left min not_entered t.locals in
  let bound = if m = not_entered then t.global else m in
  t.safe_cache <- bound - 1;
  t.safe_cache

let drain t =
  let safe = compute_safe t in
  let ready, waiting = List.partition (fun a -> a.epoch <= safe) t.pending in
  t.pending <- waiting;
  (* Oldest first. *)
  List.iter (fun a -> a.run ()) (List.rev ready)

let acquire t ~tid = t.locals.(tid) <- t.global

let release t ~tid =
  t.locals.(tid) <- not_entered;
  drain t

let bump t ~on_safe =
  let old = t.global in
  t.global <- old + 1;
  t.pending <- { epoch = old; run = on_safe } :: t.pending;
  drain t;
  t.global

let refresh t ~tid =
  t.locals.(tid) <- t.global;
  drain t

let current t = t.global
let safe t = compute_safe t
