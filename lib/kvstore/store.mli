(** A FASTER-style key-value store (the untrusted host database).

    Records live in a log-structured address space split, like FASTER's
    HybridLog, into a {e mutable region} (newest addresses, updated in
    place), a {e read-only region} (updates go copy-on-write: a new version
    is appended and the hash index is swung to it), and an optional
    {e spilled region} (oldest versions serialised to a data file and read
    back on demand). A hash index maps each key to the address of its newest
    version.

    Every record carries the paper's 64-bit [aux] field (§7), updated
    atomically together with the value: {!try_cas} emulates FASTER's 128-bit
    compare-and-swap on (value, aux), which FastVer workers use for
    speculative timestamp installation (§5.3). Mutations are serialised per
    key through striped locks, so the store is safe under OCaml domains.

    The store is polymorphic in the value type; a {!codec} is needed only
    when records are spilled or checkpointed. *)

type 'v codec = { encode : 'v -> string; decode : string -> 'v }

val string_codec : string codec

type 'v t

val create :
  ?mutable_region_entries:int ->
  ?spill:(string * int) ->
  codec:'v codec ->
  unit ->
  'v t
(** [create ~codec ()] builds an empty store. [mutable_region_entries]
    bounds the in-place-updatable suffix of the log (default 1 M entries).
    [spill = (path, memory_budget_entries)] enables spilling of cold record
    versions to [path] once the in-memory log exceeds the budget. *)

val length : 'v t -> int
(** Number of live records. *)

val log_size : 'v t -> int
(** Number of allocated log entries (live + superseded versions). *)

val get : 'v t -> Key.t -> ('v * int64) option
(** Current value and aux field of a key. *)

val put : 'v t -> Key.t -> 'v -> aux:int64 -> unit
(** Insert or update unconditionally. *)

val try_cas : 'v t -> Key.t -> expected_aux:int64 -> 'v -> aux:int64 -> bool
(** Atomically update value and aux iff the key exists and its current aux
    equals [expected_aux] — the speculative-update primitive of §5.3/§7.
    Returns [false] (no change) otherwise. *)

val update : 'v t -> Key.t -> (('v * int64) option -> 'v * int64) -> unit
(** Read-modify-write under the key's stripe lock. *)

val delete : 'v t -> Key.t -> unit

val iter_live : 'v t -> (Key.t -> 'v -> int64 -> unit) -> unit
(** Iterate over current versions, in unspecified order. *)

(** {2 Maintenance} *)

val spill_now : 'v t -> unit
(** Force cold versions beyond the memory budget out to the spill file. *)

type stats = {
  reads : int;
  writes : int;
  rcu_copies : int;  (** updates that had to append a new version *)
  spill_reads : int;  (** gets served from the spill file *)
}

val stats : 'v t -> stats
(** A consistent-enough snapshot: the live counters are [Atomic.t]s bumped
    from any domain; each field reads one atomic. *)

(** {2 Checkpointing (CPR-style)}

    [checkpoint] persists a prefix-consistent snapshot of all live records;
    [recover] reloads it. FastVer synchronises these with verification
    epochs so that a verified epoch is also durable (§7). *)

val checkpoint : 'v t -> path:string -> version:int -> unit
(** Atomic: the snapshot is streamed to [path ^ ".tmp"], fsynced and renamed
    over [path] ({!Ckpt_io}), so a crash mid-checkpoint leaves the previous
    file intact. [version] (the verified epoch) is stored as a full int64. *)

val recover :
  ?mutable_region_entries:int ->
  ?spill:(string * int) ->
  codec:'v codec ->
  path:string ->
  unit ->
  ('v t * int, string) result
(** Returns the store and the checkpoint version, or an error if the file is
    missing or corrupt. A checkpoint with the legacy [FVCKPT01] magic (int32
    version header) is rejected with an explicit unsupported-format error
    rather than a generic bad-magic one. Total on untrusted input: every
    on-disk length and count is validated against the file size before use,
    so arbitrary byte corruption yields [Error _], never an exception or an
    oversized allocation. *)
