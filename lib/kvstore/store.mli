(** A FASTER-style key-value store (the untrusted host database).

    Records live in a log-structured address space split, like FASTER's
    HybridLog, into a {e mutable region} (newest addresses, updated in
    place), a {e read-only region} (updates go copy-on-write: a new version
    is appended and the hash index is swung to it), and two optional on-disk
    regions for the oldest versions: a plain {e spill} file (unauthenticated,
    kept for baselines) and an authenticated {e cold tier}
    ({!Fastver_cold.Cold}) whose reads are MAC-checked end to end. A hash
    index maps each key to the address of its newest version.

    Every record carries the paper's 64-bit [aux] field (§7), updated
    atomically together with the value: {!try_cas} emulates FASTER's 128-bit
    compare-and-swap on (value, aux), which FastVer workers use for
    speculative timestamp installation (§5.3). Mutations are serialised per
    key through striped locks, so the store is safe under OCaml domains.

    Reads that may touch a disk tier are total: a missing or misconfigured
    backing tier, a torn read or a failed integrity check is an [Error _],
    never an exception — the server fails the one request and keeps serving.

    The store is polymorphic in the value type; a {!codec} is needed only
    when records leave memory or are checkpointed. *)

module Cold = Fastver_cold.Cold

type 'v codec = { encode : 'v -> string; decode : string -> 'v }

val string_codec : string codec

type 'v t

val create :
  ?mutable_region_entries:int ->
  ?spill:(string * int) ->
  ?cold:Cold.t ->
  codec:'v codec ->
  unit ->
  'v t
(** [create ~codec ()] builds an empty store. [mutable_region_entries]
    bounds the in-place-updatable suffix of the log (default 1 M entries).
    [spill = (path, memory_budget_entries)] enables spilling of cold record
    versions to [path] once the in-memory log exceeds the budget. [cold]
    attaches an authenticated cold tier; {!demote_now} moves cooling
    versions into it. *)

val length : 'v t -> int
(** Number of live records. *)

val log_size : 'v t -> int
(** Number of allocated log entries (live + superseded versions). *)

val get : 'v t -> Key.t -> (('v * int64) option, string) result
(** Current value and aux field of a key. [Ok None] when absent; [Error _]
    when the record lives on disk and the read failed (misconfigured tier,
    torn read, or — for the cold tier — a failed MAC check). *)

val put : 'v t -> Key.t -> 'v -> aux:int64 -> unit
(** Insert or update unconditionally. *)

val try_cas : 'v t -> Key.t -> expected_aux:int64 -> 'v -> aux:int64 -> bool
(** Atomically update value and aux iff the key exists and its current aux
    equals [expected_aux] — the speculative-update primitive of §5.3/§7.
    Returns [false] (no change) otherwise. Compares the aux word carried by
    the slot, so it never reads a disk tier. *)

val update :
  'v t -> Key.t -> (('v * int64) option -> 'v * int64) -> (unit, string) result
(** Read-modify-write under the key's stripe lock. [Error _] if the prior
    value could not be read back from its disk tier (no update happens). *)

val delete : 'v t -> Key.t -> unit

val iter_live :
  'v t -> (Key.t -> 'v -> int64 -> unit) -> (unit, string) result
(** Iterate over current versions, in unspecified order. Stops at the first
    record whose disk tier fails to produce it. *)

val iter_aux : 'v t -> (Key.t -> int64 -> unit) -> unit
(** Iterate over the (key, aux) of every current version without touching
    any disk tier. Total. *)

(** {2 Maintenance} *)

val spill_now : 'v t -> (unit, string) result
(** Force cold versions beyond the memory budget out to the spill file.
    [Error _] when no spill file is configured (misconfiguration is total,
    never an exception). *)

val cold_tier : 'v t -> Cold.t option

val demote_now : 'v t -> budget:int -> (int, string) result
(** Demote record versions older than the newest [budget] log entries (and
    outside the mutable region) to the cold tier; returns how many moved.
    Each body flip happens under the key's stripe lock, so demotion is safe
    while the store is serving. [Ok 0] when no cold tier is attached. *)

val compact_cold : 'v t -> min_dead_ratio:float -> (int, string) result
(** Rewrite live records out of sealed segments whose dead-byte ratio is at
    least [min_dead_ratio], then retire those segments; returns how many
    records were rewritten. Every rewrite re-validates the record's MAC. *)

type stats = {
  reads : int;
  writes : int;
  rcu_copies : int;  (** updates that had to append a new version *)
  spill_reads : int;  (** gets served from the spill file *)
}

val stats : 'v t -> stats
(** A consistent-enough snapshot: the live counters are [Atomic.t]s bumped
    from any domain; each field reads one atomic. Cold-tier counters live in
    {!Cold.stats}. *)

(** {2 Checkpointing (CPR-style)}

    [checkpoint] persists a prefix-consistent snapshot of all live records;
    [recover] reloads it. FastVer synchronises these with verification
    epochs so that a verified epoch is also durable (§7). *)

val checkpoint : 'v t -> path:string -> version:int -> unit
(** Atomic: the snapshot is streamed to [path ^ ".tmp"], fsynced and renamed
    over [path] ({!Ckpt_io}), so a crash mid-checkpoint leaves the previous
    file intact. [version] (the verified epoch) is stored as a full int64.
    Cold records are stored as segment references (their bytes are already
    durable in the cold tier); pair this file with the cold manifest in the
    same generation. @raise Failure if a spilled record cannot be read back. *)

val recover :
  ?mutable_region_entries:int ->
  ?spill:(string * int) ->
  ?cold:Cold.t ->
  codec:'v codec ->
  path:string ->
  unit ->
  ('v t * int, string) result
(** Returns the store and the checkpoint version, or an error if the file is
    missing or corrupt. Reads the current [FVCKPT03] format and the previous
    inline-only [FVCKPT02]; the legacy [FVCKPT01] magic (int32 version
    header) is rejected with an explicit unsupported-format error rather
    than a generic bad-magic one. Cold references are validated against
    [cold] (recovered from the same generation's manifest) — a checkpoint
    that references cold segments recovers to [Error _] when no cold tier is
    configured. Total on untrusted input: every on-disk length and count is
    validated against the file size before use, so arbitrary byte corruption
    yields [Error _], never an exception or an oversized allocation. *)
