exception Injected_crash of string

type fault =
  | Die_after_bytes of int
  | Die_before_fsync of string
  | Die_before_rename of string

(* The armed fault and the cumulative byte counter live in module state so
   that one plan covers a whole multi-file checkpoint (core writes the data,
   tree, sealed and tpm files plus the manifest through this module). *)
let armed : fault option ref = ref None
let written = ref 0

let arm f =
  armed := Some f;
  written := 0

let disarm () = armed := None
let bytes_written () = !written

let crash msg = raise (Injected_crash msg)

type writer = { oc : out_channel; final : string }

let write w s =
  let len = String.length s in
  (match !armed with
  | Some (Die_after_bytes n) when !written + len > n ->
      (* The bytes up to the cut point made it into the temp file; the rest
         of the process never ran. *)
      let allowed = max 0 (n - !written) in
      output_substring w.oc s 0 allowed;
      flush w.oc;
      written := n;
      crash (Printf.sprintf "after %d bytes (in %s)" n
               (Filename.basename w.final))
  | _ -> ());
  output_string w.oc s;
  written := !written + len

let write_bytes w b = write w (Bytes.to_string b)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let with_atomic_file path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let result =
    match f { oc; final = path } with
    | r -> r
    | exception e ->
        (* A real crash leaves the torn temp file behind; so do we. The
           committed name is untouched either way. *)
        close_out_noerr oc;
        raise e
  in
  flush oc;
  let base = Filename.basename path in
  (match !armed with
  | Some (Die_before_fsync name) when name = base ->
      (* Unsynced data may never reach disk: model the crash by tearing the
         temp file's tail off before "dying". *)
      let size = out_channel_length oc in
      close_out_noerr oc;
      (try Unix.truncate tmp (size / 2) with Unix.Unix_error _ -> ());
      crash ("before fsync of " ^ base)
  | _ -> ());
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  (match !armed with
  | Some (Die_before_rename name) when name = base ->
      crash ("before rename of " ^ base)
  | _ -> ());
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path);
  result

let write_file_atomic path contents =
  with_atomic_file path (fun w -> write w contents)

(* ------------------------------------------------------------------ *)
(* Manifests and generations                                           *)
(* ------------------------------------------------------------------ *)

let sha256_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let ctx = Fastver_crypto.Sha256.init () in
          let buf = Bytes.create 65536 in
          let rec loop () =
            match input ic buf 0 (Bytes.length buf) with
            | 0 -> ()
            | n ->
                Fastver_crypto.Sha256.update_bytes ctx buf 0 n;
                loop ()
          in
          loop ();
          Ok
            (Fastver_crypto.Bytes_util.to_hex
               (Fastver_crypto.Sha256.finalize ctx)))

module Manifest = struct
  type entry = { name : string; size : int; sha256_hex : string }
  type t = { generation : int; entries : entry list }

  let filename = "MANIFEST"
  let magic = "FVMANIFEST1"

  let entry_of_file ~dir name =
    let path = Filename.concat dir name in
    match sha256_file path with
    | Error e -> Error e
    | Ok sha256_hex -> (
        match (Unix.stat path).Unix.st_size with
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | size -> Ok { name; size; sha256_hex })

  let write ~dir m =
    let buf = Buffer.create 256 in
    Buffer.add_string buf magic;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "generation %d\n" m.generation);
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "%s %d %s\n" e.sha256_hex e.size e.name))
      m.entries;
    write_file_atomic (Filename.concat dir filename) (Buffer.contents buf)

  let read ~dir =
    let path = Filename.concat dir filename in
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              let raw = really_input_string ic (in_channel_length ic) in
              match String.split_on_char '\n' raw with
              | m :: gen_line :: rest when m = magic ->
                  let generation =
                    match String.split_on_char ' ' gen_line with
                    | [ "generation"; n ] -> int_of_string n
                    | _ -> failwith "manifest: bad generation line"
                  in
                  if generation < 0 then failwith "manifest: bad generation";
                  let entries =
                    List.filter_map
                      (fun line ->
                        if line = "" then None
                        else
                          match String.split_on_char ' ' line with
                          | [ sha256_hex; size; name ]
                            when String.length sha256_hex = 64
                                 && name <> "" ->
                              let size = int_of_string size in
                              if size < 0 then
                                failwith "manifest: negative size";
                              Some { name; size; sha256_hex }
                          | _ -> failwith "manifest: bad entry line")
                      rest
                  in
                  if entries = [] then failwith "manifest: no entries";
                  Ok { generation; entries }
              | _ -> Error "manifest: bad magic"
            with
            | End_of_file -> Error "manifest truncated"
            | Failure e -> Error e)

  let verify ~dir m =
    List.fold_left
      (fun acc e ->
        Result.bind acc (fun () ->
            match entry_of_file ~dir e.name with
            | Error err ->
                Error (Printf.sprintf "manifest: %s: %s" e.name err)
            | Ok actual ->
                if actual.size <> e.size then
                  Error
                    (Printf.sprintf
                       "manifest: %s: size %d, expected %d" e.name
                       actual.size e.size)
                else if not (String.equal actual.sha256_hex e.sha256_hex)
                then
                  Error (Printf.sprintf "manifest: %s: checksum mismatch"
                           e.name)
                else Ok ()))
      (Ok ()) m.entries
end

let generation_prefix = "ckpt-"
let generation_dir_name n = Printf.sprintf "%s%d" generation_prefix n

let generations dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             let plen = String.length generation_prefix in
             if
               String.length name > plen
               && String.sub name 0 plen = generation_prefix
             then
               match
                 int_of_string_opt
                   (String.sub name plen (String.length name - plen))
               with
               | Some n when n >= 0 ->
                   let path = Filename.concat dir name in
                   if Sys.is_directory path then Some (n, path) else None
               | _ -> None
             else None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)

let rec remove_tree path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      (match Sys.readdir path with
      | exception Sys_error _ -> ()
      | names ->
          Array.iter
            (fun name -> remove_tree (Filename.concat path name))
            names);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
